// Tests of the observability layer: the metrics registry, the trace
// buffer, the JSONL run report, and their integration with the harness.
// The macro/span assertions are compiled out together with the layer
// under -DCQABENCH_NO_OBS; everything else (registry, reporter, record
// plumbing) stays functional in both build modes and is tested in both.

#include "obs/metrics.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/harness.h"
#include "json_test_util.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "query/parser.h"
#include "test_util.h"

namespace cqa {
namespace {

using testing::EmployeeFixture;
using testing::MiniJson;
using testing::ReadJsonl;
using testing::TempPath;

// ---------------------------------------------------------------------------
// Registry (functional in both build modes).

TEST(RegistryTest, CountersAreNamedAndStable) {
  obs::Registry& reg = obs::Registry::Instance();
  obs::Counter* c = reg.GetCounter("test.registry.alpha");
  EXPECT_EQ(c, reg.GetCounter("test.registry.alpha"));
  c->Reset();
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(reg.CounterValue("test.registry.alpha"), 42u);
  EXPECT_EQ(reg.CounterValue("test.registry.never_registered"), 0u);
}

TEST(RegistryTest, HistogramBucketsArePowersOfTwo) {
  obs::Histogram* h =
      obs::Registry::Instance().GetHistogram("test.registry.hist");
  h->Reset();
  h->Observe(0);   // bucket 0
  h->Observe(1);   // bucket 1
  h->Observe(2);   // bucket 2: [2, 4)
  h->Observe(3);   // bucket 2
  h->Observe(4);   // bucket 3: [4, 8)
  EXPECT_EQ(h->count(), 5u);
  EXPECT_EQ(h->sum(), 10u);
  EXPECT_EQ(h->max(), 4u);
  EXPECT_EQ(h->bucket(0), 1u);
  EXPECT_EQ(h->bucket(1), 1u);
  EXPECT_EQ(h->bucket(2), 2u);
  EXPECT_EQ(h->bucket(3), 1u);
}

TEST(RegistryTest, GaugesMoveBothWaysAndAreNamed) {
  obs::Registry& reg = obs::Registry::Instance();
  obs::Gauge* g = reg.GetGauge("test.registry.gauge");
  EXPECT_EQ(g, reg.GetGauge("test.registry.gauge"));
  g->Reset();
  g->Set(5);
  g->Add(-8);
  EXPECT_EQ(g->value(), -3);
  EXPECT_EQ(reg.GaugeValue("test.registry.gauge"), -3);
  EXPECT_EQ(reg.GaugeValue("test.registry.never_registered"), 0);
  bool found = false;
  for (const obs::GaugeSnapshot& snap : reg.Gauges()) {
    if (snap.name == "test.registry.gauge") {
      found = true;
      EXPECT_EQ(snap.value, -3);
    }
  }
  EXPECT_TRUE(found);
}

// Gauges track serving state (queue depths, open connections), so they
// update through direct calls and stay live even while the hot-path
// counter macros are disabled.
TEST(RegistryTest, GaugesIgnoreTheEnabledSwitch) {
  obs::Registry& reg = obs::Registry::Instance();
  obs::Gauge* g = reg.GetGauge("test.registry.gauge_gated");
  g->Reset();
  reg.set_enabled(false);
  g->Set(7);
  reg.set_enabled(true);
  EXPECT_EQ(g->value(), 7);
}

TEST(RegistryTest, ToJsonIsValid) {
  obs::Registry& reg = obs::Registry::Instance();
  reg.GetCounter("test.registry.json")->Increment();
  reg.GetGauge("test.registry.json_gauge")->Set(-2);
  std::map<std::string, std::string> top;
  ASSERT_TRUE(MiniJson::ParseObject(reg.ToJson(), &top)) << reg.ToJson();
  ASSERT_TRUE(top.count("gauges")) << reg.ToJson();
  EXPECT_NE(top["gauges"].find("\"test.registry.json_gauge\":-2"),
            std::string::npos)
      << top["gauges"];
}

TEST(RegistryTest, ToJsonCarriesHistogramQuantiles) {
  obs::Registry& reg = obs::Registry::Instance();
  obs::Histogram* h = reg.GetHistogram("test.registry.quantile_json");
  h->Reset();
  h->Observe(16);
  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"p50\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p95\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p999\":"), std::string::npos) << json;
}

TEST(RegistryTest, ToJsonP999TracksTailValues) {
  obs::Registry& reg = obs::Registry::Instance();
  obs::Histogram* h = reg.GetHistogram("test.registry.p999_json");
  h->Reset();
  // 500 fast observations and one large outlier: p99 sits in the bulk,
  // p999 (target rank 500.5 of 501) must reach the outlier's bucket.
  for (int i = 0; i < 500; ++i) h->Observe(10);
  h->Observe(100000);
  obs::HistogramSnapshot snap = h->snapshot();
  EXPECT_LE(snap.Quantile(0.99), 100.0);
  EXPECT_GE(snap.Quantile(0.999), 1000.0);
  EXPECT_LE(snap.Quantile(0.999), 100000.0);
}

TEST(HistogramQuantileTest, EmptyAndZeroOnlyDistributions) {
  obs::Histogram* h =
      obs::Registry::Instance().GetHistogram("test.quantile.empty");
  h->Reset();
  EXPECT_EQ(h->snapshot().Quantile(0.5), 0.0);
  for (int i = 0; i < 10; ++i) h->Observe(0);
  EXPECT_EQ(h->snapshot().Quantile(0.5), 0.0);
  EXPECT_EQ(h->snapshot().Quantile(0.99), 0.0);
}

TEST(HistogramQuantileTest, BimodalDistributionSplitsAtTheMass) {
  // 50 zeros and 50 eights: the median sits in the zero mass, the upper
  // tail in the [8, 16) bucket — but never above the observed max.
  obs::Histogram* h =
      obs::Registry::Instance().GetHistogram("test.quantile.bimodal");
  h->Reset();
  for (int i = 0; i < 50; ++i) h->Observe(0);
  for (int i = 0; i < 50; ++i) h->Observe(8);
  obs::HistogramSnapshot snap = h->snapshot();
  EXPECT_EQ(snap.Quantile(0.5), 0.0);
  EXPECT_GE(snap.Quantile(0.75), 8.0);
  EXPECT_LE(snap.Quantile(0.99), 8.0);  // clamped to the observed max
}

TEST(HistogramQuantileTest, UniformDistributionIsMonotoneAndBounded) {
  obs::Histogram* h =
      obs::Registry::Instance().GetHistogram("test.quantile.uniform");
  h->Reset();
  for (uint64_t v = 1; v <= 1000; ++v) h->Observe(v);
  obs::HistogramSnapshot snap = h->snapshot();
  double p50 = snap.Quantile(0.5);
  double p95 = snap.Quantile(0.95);
  double p99 = snap.Quantile(0.99);
  // Log-linear interpolation within power-of-two buckets: the true
  // percentiles are 500/950/990; the bucket resolution bounds the error
  // to the enclosing bucket.
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1000.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, 1000.0);
  EXPECT_GE(p99, 512.0);
}

TEST(HistogramQuantileTest, SingleValueClampsToObservedMax) {
  obs::Histogram* h =
      obs::Registry::Instance().GetHistogram("test.quantile.single");
  h->Reset();
  h->Observe(5);
  obs::HistogramSnapshot snap = h->snapshot();
  // With the whole mass in one bucket the quantiles stay within the
  // bucket ([4, 8) for the value 5), clamped above by the observed max.
  EXPECT_GE(snap.Quantile(0.0), 4.0);
  EXPECT_LE(snap.Quantile(0.5), 5.0);
  EXPECT_EQ(snap.Quantile(1.0), 5.0);
}

#ifndef CQABENCH_NO_OBS

TEST(RegistryTest, MacrosIncrementTheNamedMetric) {
  obs::Registry& reg = obs::Registry::Instance();
  reg.GetCounter("test.macro.count")->Reset();
  CQA_OBS_COUNT("test.macro.count");
  CQA_OBS_COUNT_N("test.macro.count", 9);
  EXPECT_EQ(reg.CounterValue("test.macro.count"), 10u);
  obs::Histogram* h = reg.GetHistogram("test.macro.hist");
  h->Reset();
  CQA_OBS_OBSERVE("test.macro.hist", 7);
  EXPECT_EQ(h->count(), 1u);
  EXPECT_EQ(h->sum(), 7u);
}

TEST(RegistryTest, DisablingStopsMacroIncrements) {
  obs::Registry& reg = obs::Registry::Instance();
  reg.GetCounter("test.macro.gated")->Reset();
  reg.set_enabled(false);
  CQA_OBS_COUNT("test.macro.gated");
  reg.set_enabled(true);
  EXPECT_EQ(reg.CounterValue("test.macro.gated"), 0u);
  CQA_OBS_COUNT("test.macro.gated");
  EXPECT_EQ(reg.CounterValue("test.macro.gated"), 1u);
}

TEST(RegistryTest, SchemesPopulateSamplerCounters) {
  obs::Registry& reg = obs::Registry::Instance();
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(*fx.schema, "Q(N) :- employee(I, N, D).");
  PreprocessResult pre = BuildSynopses(*fx.db, q);
  uint64_t draws_before = reg.CounterValue("sampler.kl.draws") +
                          reg.CounterValue("sampler.klm.draws") +
                          reg.CounterValue("sampler.natural.draws") +
                          reg.CounterValue("sampler.indexed_natural.draws");
  uint64_t runs_before = reg.CounterValue("harness.scheme_runs");
  Rng rng(5);
  RunAllSchemes(pre, ApxParams{}, 10.0, rng);
  uint64_t draws_after = reg.CounterValue("sampler.kl.draws") +
                         reg.CounterValue("sampler.klm.draws") +
                         reg.CounterValue("sampler.natural.draws") +
                         reg.CounterValue("sampler.indexed_natural.draws");
  EXPECT_GT(draws_after, draws_before);
  EXPECT_EQ(reg.CounterValue("harness.scheme_runs"), runs_before + 4);
}

// ---------------------------------------------------------------------------
// Trace spans (the span type is a no-op stub under CQABENCH_NO_OBS).

TEST(TraceTest, SpansRecordNestingAndDuration) {
  obs::TraceBuffer& buffer = obs::TraceBuffer::Instance();
  buffer.Clear();
  uint64_t outer_id = 0;
  {
    obs::TraceSpan outer("test.outer");
    outer_id = outer.id();
    EXPECT_NE(outer_id, 0u);
    obs::TraceSpan inner("test.inner", outer.id());
    EXPECT_GE(inner.ElapsedSeconds(), 0.0);
  }
  std::vector<obs::SpanRecord> spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Inner destructs first, so it is recorded first.
  EXPECT_STREQ(spans[0].name, "test.inner");
  EXPECT_EQ(spans[0].parent_id, outer_id);
  EXPECT_STREQ(spans[1].name, "test.outer");
  EXPECT_EQ(spans[1].parent_id, 0u);
  EXPECT_GE(spans[1].duration_seconds, spans[0].duration_seconds);
  EXPECT_GE(spans[0].start_seconds, spans[1].start_seconds);
}

TEST(TraceTest, RingEvictsOldestAndCountsDrops) {
  obs::TraceBuffer& buffer = obs::TraceBuffer::Instance();
  buffer.set_capacity(3);
  for (int i = 0; i < 5; ++i) {
    obs::TraceSpan span(i % 2 == 0 ? "test.even" : "test.odd");
  }
  std::vector<obs::SpanRecord> spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(buffer.dropped(), 2u);
  // Oldest first: spans 2, 3, 4 survive.
  EXPECT_STREQ(spans[0].name, "test.even");
  EXPECT_STREQ(spans[1].name, "test.odd");
  EXPECT_STREQ(spans[2].name, "test.even");
  EXPECT_LE(spans[0].start_seconds, spans[1].start_seconds);
  buffer.set_capacity(4096);
  buffer.Clear();
  EXPECT_EQ(buffer.dropped(), 0u);
}

TEST(TraceTest, ExportJsonlIsValid) {
  obs::TraceBuffer& buffer = obs::TraceBuffer::Instance();
  buffer.Clear();
  {
    obs::TraceSpan span("test.export");
  }
  std::string path = TempPath("cqa_obs_trace_test.jsonl");
  std::string error;
  ASSERT_TRUE(buffer.ExportJsonl(path, &error)) << error;
  auto records = ReadJsonl(path);
  // First line is the buffer meta record, then one line per span.
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0]["trace_meta"], "true");
  EXPECT_EQ(records[0]["dropped_spans"], "0");
  EXPECT_EQ(records[0]["buffered_spans"], "1");
  EXPECT_EQ(records[1]["name"], "test.export");
  EXPECT_EQ(records[1]["parent_id"], "0");
  EXPECT_GE(std::stod(records[1]["dur_s"]), 0.0);
  std::filesystem::remove(path);
}

TEST(TraceTest, ExportJsonlCountsDroppedSpans) {
  obs::TraceBuffer& buffer = obs::TraceBuffer::Instance();
  buffer.Clear();
  buffer.set_capacity(2);
  for (int i = 0; i < 5; ++i) {
    obs::TraceSpan span("test.drop");
  }
  std::string path = TempPath("cqa_obs_trace_drop_test.jsonl");
  std::string error;
  ASSERT_TRUE(buffer.ExportJsonl(path, &error)) << error;
  auto records = ReadJsonl(path);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0]["dropped_spans"], "3");
  EXPECT_EQ(records[0]["buffered_spans"], "2");
  buffer.set_capacity(4096);
  buffer.Clear();
  std::filesystem::remove(path);
}

// The wire-propagated request trace id: stamped on the record at span
// destruction, exported in the JSONL line, absent (no field at all) for
// the untraced hot-path spans.
TEST(TraceTest, TraceIdPropagatesToRecordsAndExport) {
  obs::TraceBuffer& buffer = obs::TraceBuffer::Instance();
  buffer.Clear();
  uint64_t outer_id = 0;
  {
    obs::TraceSpan outer("test.traced.outer", 0, std::string("req-42"));
    outer_id = outer.id();
    obs::TraceSpan inner("test.traced.inner", outer.id(),
                         std::string("req-42"));
    obs::TraceSpan untraced("test.traced.hot", outer.id());
  }
  std::vector<obs::SpanRecord> spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Destruction order is untraced, inner, outer.
  EXPECT_STREQ(spans[0].name, "test.traced.hot");
  EXPECT_EQ(spans[0].trace_id, "");
  EXPECT_STREQ(spans[1].name, "test.traced.inner");
  EXPECT_EQ(spans[1].trace_id, "req-42");
  EXPECT_EQ(spans[1].parent_id, outer_id);
  EXPECT_STREQ(spans[2].name, "test.traced.outer");
  EXPECT_EQ(spans[2].trace_id, "req-42");

  std::string path = TempPath("cqa_obs_trace_id_test.jsonl");
  std::string error;
  ASSERT_TRUE(buffer.ExportJsonl(path, &error)) << error;
  auto records = ReadJsonl(path);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_FALSE(records[1].count("trace_id"));  // Untraced span: no field.
  EXPECT_EQ(records[2]["trace_id"], "req-42");
  EXPECT_EQ(records[3]["trace_id"], "req-42");
  std::filesystem::remove(path);
}

// Golden-shape test for the Chrome trace exporter: the file must be a
// single JSON object with a traceEvents array of complete ("ph":"X")
// events carrying ts/dur microsecond fields — the contract chrome://
// tracing and Perfetto load.
TEST(TraceTest, ExportChromeTraceIsValid) {
  obs::TraceBuffer& buffer = obs::TraceBuffer::Instance();
  buffer.Clear();
  uint64_t outer_id = 0;
  {
    obs::TraceSpan outer("test.chrome.outer");
    outer_id = outer.id();
    obs::TraceSpan inner("test.chrome.inner", outer.id());
  }
  std::string path = TempPath("cqa_obs_trace_test.chrome.json");
  std::string error;
  ASSERT_TRUE(buffer.ExportChromeTrace(path, &error)) << error;
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream contents;
  contents << in.rdbuf();
  std::map<std::string, std::string> top;
  ASSERT_TRUE(MiniJson::ParseObject(contents.str(), &top)) << contents.str();
  ASSERT_TRUE(top.count("traceEvents"));
  ASSERT_TRUE(top.count("otherData"));

  const std::string& events = top["traceEvents"];
  EXPECT_NE(events.find("\"name\":\"test.chrome.inner\""), std::string::npos);
  EXPECT_NE(events.find("\"name\":\"test.chrome.outer\""), std::string::npos);
  EXPECT_NE(events.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(events.find("\"ts\":"), std::string::npos);
  EXPECT_NE(events.find("\"dur\":"), std::string::npos);
  EXPECT_NE(events.find("\"pid\":1"), std::string::npos);
  // The parent linkage survives in args.
  EXPECT_NE(events.find("\"parent_id\":" + std::to_string(outer_id)),
            std::string::npos);

  std::map<std::string, std::string> other;
  ASSERT_TRUE(MiniJson::ParseObject(top["otherData"], &other));
  EXPECT_EQ(other["dropped_spans"], "0");
  EXPECT_EQ(other["buffered_spans"], "2");
  std::filesystem::remove(path);
}

#endif  // !CQABENCH_NO_OBS

// ---------------------------------------------------------------------------
// Run records and the JSONL reporter (functional in both build modes).

TEST(ReportTest, RunRecordToJsonEscapesAndRoundTrips) {
  obs::RunRecord record;
  record.scenario = "Noise[\"quoted\\path\"]";
  record.x_label = "noise";
  record.x = 0.25;
  record.scheme = "KLM";
  record.estimate = 0.5;
  record.num_answers = 3;
  record.estimator_samples = 10;
  record.main_samples = 20;
  record.total_samples = 30;
  record.timed_out = true;
  record.per_thread_samples = {12, 8};
  std::string json = obs::RunRecordToJson(record);
  std::map<std::string, std::string> parsed;
  ASSERT_TRUE(MiniJson::ParseObject(json, &parsed)) << json;
  EXPECT_EQ(parsed["scenario"], "Noise[\"quoted\\path\"]");
  EXPECT_EQ(parsed["scheme"], "KLM");
  EXPECT_EQ(parsed["x_label"], "noise");
  EXPECT_EQ(std::stod(parsed["x"]), 0.25);
  EXPECT_EQ(parsed["estimator_samples"], "10");
  EXPECT_EQ(parsed["main_samples"], "20");
  EXPECT_EQ(parsed["total_samples"], "30");
  EXPECT_EQ(parsed["timed_out"], "true");
  EXPECT_EQ(parsed["per_thread_samples"], "[12,8]");
}

TEST(ReportTest, ReporterWritesOneLinePerRecord) {
  std::string path = TempPath("cqa_obs_report_test.jsonl");
  obs::RunReporter reporter;
  std::string error;
  ASSERT_TRUE(reporter.Open(path, &error)) << error;
  EXPECT_TRUE(reporter.is_open());
  obs::RunRecord record;
  record.scenario = "unit";
  record.scheme = "Natural";
  reporter.Add(record);
  record.scheme = "KL";
  reporter.Add(record);
  EXPECT_EQ(reporter.num_records(), 2u);
  reporter.Close();
  auto records = ReadJsonl(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0]["scheme"], "Natural");
  EXPECT_EQ(records[1]["scheme"], "KL");
  std::filesystem::remove(path);
}

TEST(ReportTest, OpenFailsOnBadPath) {
  obs::RunReporter reporter;
  std::string error;
  EXPECT_FALSE(reporter.Open("/nonexistent_dir_xyz/report.jsonl", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(reporter.is_open());
}

// The acceptance path: RunAllSchemes with a reporter emits one valid
// record per scheme, carrying the phase breakdown.
TEST(ReportTest, RunAllSchemesEmitsOneRecordPerScheme) {
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(*fx.schema, "Q(N) :- employee(I, N, D).");
  PreprocessResult pre = BuildSynopses(*fx.db, q);
  std::string path = TempPath("cqa_obs_harness_test.jsonl");
  obs::RunReporter reporter;
  std::string error;
  ASSERT_TRUE(reporter.Open(path, &error)) << error;
  Rng rng(7);
  obs::RunContext context{"Test[0.5, 1]", "noise", 0.5};
  RunAllSchemes(pre, ApxParams{}, 10.0, rng, &reporter, context);
  reporter.Close();

  auto records = ReadJsonl(path);
  ASSERT_EQ(records.size(), 4u);
  const char* kExpected[] = {"Natural", "KL", "KLM", "Cover"};
  for (size_t i = 0; i < records.size(); ++i) {
    auto& r = records[i];
    EXPECT_EQ(r["scenario"], "Test[0.5, 1]");
    EXPECT_EQ(r["x_label"], "noise");
    EXPECT_EQ(std::stod(r["x"]), 0.5);
    EXPECT_EQ(r["scheme"], kExpected[i]);
    EXPECT_EQ(r["num_answers"], "3");
    EXPECT_EQ(r["timed_out"], "false");
    // The sample split is consistent and non-trivial.
    size_t estimator = std::stoull(r["estimator_samples"]);
    size_t main = std::stoull(r["main_samples"]);
    EXPECT_EQ(std::stoull(r["total_samples"]), estimator + main);
    EXPECT_GT(main, 0u);
    EXPECT_GE(std::stod(r["total_seconds"]), 0.0);
    EXPECT_GE(std::stod(r["main_seconds"]), 0.0);
    ASSERT_TRUE(r.count("per_thread_samples")) << r["scheme"];
  }
  std::filesystem::remove(path);
}

// Parallel Monte Carlo surfaces per-worker sample counts: with two
// threads the per_thread_samples array of the MC schemes has two entries
// summing to the main-phase total.
TEST(ReportTest, ParallelRunReportsPerThreadSamples) {
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(*fx.schema, "Q(N) :- employee(I, N, D).");
  PreprocessResult pre = BuildSynopses(*fx.db, q);
  std::string path = TempPath("cqa_obs_parallel_test.jsonl");
  obs::RunReporter reporter;
  std::string error;
  ASSERT_TRUE(reporter.Open(path, &error)) << error;
  ApxParams params;
  params.num_threads = 2;
  Rng rng(11);
  obs::RunContext context{"Parallel[2]", "threads", 2.0};
  RunAllSchemes(pre, params, 10.0, rng, &reporter, context);
  reporter.Close();

  auto records = ReadJsonl(path);
  ASSERT_EQ(records.size(), 4u);
  for (auto& r : records) {
    if (r["scheme"] == "Cover") continue;  // inherently sequential
    std::string array = r["per_thread_samples"];
    // Per-answer worker counts are summed element-wise across answers:
    // two workers -> two entries, together covering every main draw.
    size_t entries = 0;
    size_t sum = 0;
    std::stringstream ss(array.substr(1, array.size() - 2));
    std::string item;
    while (std::getline(ss, item, ',')) {
      ++entries;
      sum += std::stoull(item);
    }
    EXPECT_EQ(entries, 2u) << r["scheme"] << " " << array;
    EXPECT_EQ(sum, std::stoull(r["main_samples"]))
        << r["scheme"] << " " << array;
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace cqa
