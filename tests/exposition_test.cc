// Tests of obs/exposition — the Prometheus text-format renderer behind
// cqad's GET /metrics. The core assertion is a golden file: exposition
// output is a wire format consumed by external scrapers, so any byte
// change must be a conscious decision (regenerate tests/golden/
// exposition_golden.prom and re-review). The remaining tests pin the
// name mapping and the live-registry path.

#include "obs/exposition.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace cqa {
namespace {

TEST(PrometheusNameTest, PrefixesAndSanitizes) {
  EXPECT_EQ(obs::PrometheusMetricName("serve.request_micros"),
            "cqa_serve_request_micros");
  EXPECT_EQ(obs::PrometheusMetricName("sampler.kl.draws"),
            "cqa_sampler_kl_draws");
  EXPECT_EQ(obs::PrometheusMetricName("weird-name with spaces"),
            "cqa_weird_name_with_spaces");
  EXPECT_EQ(obs::PrometheusMetricName(""), "cqa_");
}

// Hand-built snapshots rendered against the checked-in golden bytes.
TEST(PrometheusTextTest, MatchesGoldenFile) {
  std::vector<obs::CounterSnapshot> counters = {
      {"serve.requests", 42},
      {"sampler.kl.draws", 7},
  };
  std::vector<obs::GaugeSnapshot> gauges = {
      {"serve.connections_open", 3},
      {"serve.admission_queued", -1},
  };
  obs::HistogramSnapshot hist;
  hist.name = "serve.phase_sample_micros";
  hist.buckets.assign(obs::Histogram::kNumBuckets, 0);
  hist.buckets[0] = 1;   // one zero observation
  hist.buckets[1] = 2;   // two observations of exactly 1
  hist.buckets[5] = 3;   // three in [16, 32)
  hist.buckets[31] = 1;  // one in the overflow bucket
  hist.count = 7;
  hist.sum = 131;
  std::string text = obs::PrometheusText(counters, gauges, {hist});

  std::ifstream in(std::string(CQABENCH_GOLDEN_DIR) +
                   "/exposition_golden.prom");
  ASSERT_TRUE(in.good()) << "missing golden file";
  std::stringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(text, golden.str())
      << "exposition format drifted; if intentional, regenerate "
         "tests/golden/exposition_golden.prom";
}

// The cumulative bucket invariant independent of the golden bytes: every
// _bucket line's count is monotone and the +Inf line equals _count.
TEST(PrometheusTextTest, BucketsAreCumulativeUpToInf) {
  obs::HistogramSnapshot hist;
  hist.name = "test.cumulative";
  hist.buckets.assign(obs::Histogram::kNumBuckets, 0);
  hist.buckets[2] = 5;
  hist.buckets[4] = 2;
  hist.count = 7;
  hist.sum = 60;
  std::string text = obs::PrometheusText({}, {}, {hist});

  uint64_t previous = 0;
  uint64_t inf_value = 0;
  size_t bucket_lines = 0;
  std::stringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) {
    size_t brace = line.find("_bucket{le=\"");
    if (brace == std::string::npos) continue;
    ++bucket_lines;
    uint64_t value = std::stoull(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(value, previous) << line;
    previous = value;
    if (line.find("+Inf") != std::string::npos) inf_value = value;
  }
  EXPECT_EQ(bucket_lines, obs::Histogram::kNumBuckets);
  EXPECT_EQ(inf_value, hist.count);
  EXPECT_NE(text.find("cqa_test_cumulative_count 7"), std::string::npos);
  EXPECT_NE(text.find("cqa_test_cumulative_sum 60"), std::string::npos);
}

TEST(PrometheusTextTest, EmptySnapshotsRenderNothing) {
  EXPECT_EQ(obs::PrometheusText({}, {}, {}), "");
}

// The live path /metrics serves: a registered metric shows up with the
// mapped name, its # TYPE line, and the _total counter suffix.
TEST(PrometheusTextTest, RegistryTextCarriesRegisteredMetrics) {
  obs::Registry& reg = obs::Registry::Instance();
  reg.GetCounter("test.exposition.registry_counter")->Reset();
  reg.GetCounter("test.exposition.registry_counter")->Increment(5);
  reg.GetGauge("test.exposition.registry_gauge")->Set(-4);
  std::string text = obs::RegistryPrometheusText();
  EXPECT_NE(
      text.find(
          "# TYPE cqa_test_exposition_registry_counter_total counter\n"
          "cqa_test_exposition_registry_counter_total 5\n"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE cqa_test_exposition_registry_gauge gauge\n"
                      "cqa_test_exposition_registry_gauge -4\n"),
            std::string::npos)
      << text;
}

}  // namespace
}  // namespace cqa
