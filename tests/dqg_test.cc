#include "gen/dqg.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cqa/preprocess.h"
#include "gen/noise.h"
#include "gen/tpch.h"
#include "query/parser.h"
#include "test_util.h"

namespace cqa {
namespace {

struct DqgFixture {
  DqgFixture() {
    schema.AddRelation(RelationSchema(
        "r", {{"k", ValueType::kInt}, {"a", ValueType::kInt},
              {"b", ValueType::kInt}},
        {0}));
    db = std::make_unique<Database>(&schema);
    Rng rng(1);
    for (int k = 0; k < 60; ++k) {
      db->Insert("r", {Value(k), Value(k % 3), Value(k)});
    }
  }
  Schema schema;
  std::unique_ptr<Database> db;
};

TEST(DqgTest, AchievedBalanceMatchesPreprocessing) {
  // Whatever projection DQG reports, recomputing the balance through the
  // full preprocessing pipeline must agree.
  DqgFixture fx;
  ConjunctiveQuery q = MustParseCq(fx.schema, "Q(K, A, B) :- r(K, A, B).");
  Rng rng(2);
  DqgOptions options;
  options.pool_size = 32;
  std::vector<DqgResult> results =
      GenerateBalancedQueries(*fx.db, q, {0.1, 0.5, 1.0}, options, rng);
  ASSERT_EQ(results.size(), 3u);
  for (const DqgResult& r : results) {
    PreprocessResult pre = BuildSynopses(*fx.db, r.query);
    EXPECT_NEAR(r.balance, pre.Balance(), 1e-9);
  }
}

TEST(DqgTest, BalanceOrderingFollowsTargets) {
  DqgFixture fx;
  ConjunctiveQuery q = MustParseCq(fx.schema, "Q(K, A, B) :- r(K, A, B).");
  Rng rng(3);
  DqgOptions options;
  options.pool_size = 64;
  std::vector<DqgResult> results =
      GenerateBalancedQueries(*fx.db, q, {0.05, 1.0}, options, rng);
  ASSERT_EQ(results.size(), 2u);
  // Projecting only A gives 3 answers over 60 images (balance 0.05);
  // projecting K or B gives 60/60 = 1. Both extremes are in the space, so
  // the low-target query must end up with smaller balance.
  EXPECT_LT(results[0].balance, results[1].balance);
  EXPECT_NEAR(results[1].balance, 1.0, 0.2);
}

TEST(DqgTest, QueriesKeepBodyAtoms) {
  DqgFixture fx;
  ConjunctiveQuery q = MustParseCq(fx.schema, "Q(K, A, B) :- r(K, A, B).");
  Rng rng(4);
  std::vector<DqgResult> results =
      GenerateBalancedQueries(*fx.db, q, {0.5}, DqgOptions{}, rng);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].query.NumAtoms(), q.NumAtoms());
  EXPECT_FALSE(results[0].query.answer_vars().empty());
  results[0].query.Validate(fx.schema);
}

TEST(DqgTest, EmptyQueryGivesNoResults) {
  DqgFixture fx;
  ConjunctiveQuery q = MustParseCq(fx.schema, "Q(B) :- r(K, 99, B).");
  Rng rng(5);
  std::vector<DqgResult> results =
      GenerateBalancedQueries(*fx.db, q, {0.5}, DqgOptions{}, rng);
  EXPECT_TRUE(results.empty());
}

TEST(DqgTest, WorksOnNoisyTpch) {
  TpchOptions tpch;
  tpch.scale_factor = 0.0005;
  Dataset d = GenerateTpch(tpch);
  ConjunctiveQuery q = MustParseCq(
      *d.schema,
      "Q(OK, CK, OD) :- orders(OK, CK, OS, TP, OD, OP, CL, SP, OC),"
      " customer(CK, CN, CA, NK, CP, CB, 'BUILDING', CC).");
  Rng rng(6);
  NoiseOptions noise;
  noise.p = 0.5;
  AddQueryAwareNoise(d.db.get(), q, noise, rng);
  DqgOptions options;
  options.pool_size = 32;
  std::vector<DqgResult> results =
      GenerateBalancedQueries(*d.db, q, {0.2, 0.8}, options, rng);
  ASSERT_EQ(results.size(), 2u);
  for (const DqgResult& r : results) {
    EXPECT_GT(r.balance, 0.0);
    EXPECT_LE(r.balance, 1.0);
  }
  EXPECT_LE(results[0].balance, results[1].balance + 1e-9);
}

}  // namespace
}  // namespace cqa
