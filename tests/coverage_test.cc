#include "cqa/coverage.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cqa/exact.h"
#include "test_util.h"

namespace cqa {
namespace {

using testing::MakeRandomSynopsis;

Synopsis FixtureSynopsis() {
  Synopsis s;
  s.AddBlock(Synopsis::Block{2, 0, 0});
  s.AddBlock(Synopsis::Block{3, 0, 1});
  s.AddImage({{0, 0}});
  s.AddImage({{0, 1}, {1, 2}});
  return s;
}

TEST(CoverageTest, EstimatesUnionSize) {
  Synopsis s = FixtureSynopsis();
  SymbolicSpace space(&s);
  Rng rng(1);
  CoverageResult r = SelfAdjustingCoverage(space, 0.1, 0.25, rng);
  EXPECT_FALSE(r.timed_out);
  EXPECT_GT(r.trials, 0u);
  // R(H, B) = normalized · |S•|/|db(B)|; exact is 4/6.
  EXPECT_NEAR(r.normalized_estimate * space.total_weight(), 4.0 / 6.0,
              0.1 * (4.0 / 6.0) * 2);
}

TEST(CoverageTest, StepBudgetIsLinearInImageCount) {
  // Algorithm 6's N is proportional to |H|: the step count of a big-H
  // synopsis must dwarf a small-H one at equal (ε, δ).
  Rng gen(9);
  Synopsis small = MakeRandomSynopsis(gen, 4, 3, 2, 2);
  Synopsis big;
  big.AddBlock(Synopsis::Block{40, 0, 0});
  big.AddBlock(Synopsis::Block{40, 0, 1});
  for (uint32_t i = 0; i < 40; ++i) big.AddImage({{0, i}, {1, i}});
  SymbolicSpace small_space(&small);
  SymbolicSpace big_space(&big);
  Rng rng(2);
  CoverageResult r_small = SelfAdjustingCoverage(small_space, 0.2, 0.25, rng);
  CoverageResult r_big = SelfAdjustingCoverage(big_space, 0.2, 0.25, rng);
  EXPECT_GT(r_big.steps, r_small.steps * 4);
}

class CoveragePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CoveragePropertyTest, WithinRelativeErrorOnRandomSynopses) {
  Rng gen(500 + GetParam());
  Synopsis s = MakeRandomSynopsis(gen, 5, 4, 5, 3);
  double exact = *ExactRatioByEnumeration(s);
  ASSERT_GT(exact, 0.0);
  SymbolicSpace space(&s);
  Rng rng(600 + GetParam());
  CoverageResult r = SelfAdjustingCoverage(space, 0.1, 0.1, rng);
  double estimate = r.normalized_estimate * space.total_weight();
  // δ=0.1 per run; allow 2ε slack to keep the suite deterministic-ish.
  EXPECT_NEAR(estimate, exact, 2 * 0.1 * exact) << s.DebugString();
}

INSTANTIATE_TEST_SUITE_P(RandomSynopses, CoveragePropertyTest,
                         ::testing::Range(0, 10));

TEST(CoverageTest, DeadlineCausesTimeout) {
  Synopsis big;
  big.AddBlock(Synopsis::Block{50, 0, 0});
  for (uint32_t i = 0; i < 50; ++i) big.AddImage({{0, i}});
  SymbolicSpace space(&big);
  Rng rng(3);
  CoverageResult r = SelfAdjustingCoverage(space, 0.01, 0.01, rng,
                                           Deadline(0.0));
  EXPECT_TRUE(r.timed_out);
}

TEST(CoverageDeathTest, RejectsBadParameters) {
  Synopsis s = FixtureSynopsis();
  SymbolicSpace space(&s);
  Rng rng(4);
  EXPECT_DEATH(SelfAdjustingCoverage(space, 0.0, 0.25, rng), "epsilon");
  EXPECT_DEATH(SelfAdjustingCoverage(space, 0.1, 1.5, rng), "delta");
}

}  // namespace
}  // namespace cqa
