#include "gen/tpch.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "gen/text_pools.h"
#include "query/evaluator.h"
#include "query/parser.h"

namespace cqa {
namespace {

Dataset SmallTpch(uint64_t seed = 1) {
  TpchOptions options;
  options.scale_factor = 0.0005;  // ~5 suppliers, 75 customers.
  options.seed = seed;
  return GenerateTpch(options);
}

TEST(TpchTest, SchemaHasEightRelationsWithOfficialKeys) {
  Schema schema = MakeTpchSchema();
  EXPECT_EQ(schema.NumRelations(), 8u);
  EXPECT_EQ(schema.relation(schema.RelationId("region")).key_positions(),
            (std::vector<size_t>{0}));
  EXPECT_EQ(schema.relation(schema.RelationId("partsupp")).key_positions(),
            (std::vector<size_t>{0, 1}));
  EXPECT_EQ(schema.relation(schema.RelationId("lineitem")).key_positions(),
            (std::vector<size_t>{0, 3}));
  EXPECT_EQ(schema.relation(schema.RelationId("lineitem")).arity(), 16u);
}

TEST(TpchTest, GeneratedInstanceIsConsistent) {
  Dataset d = SmallTpch();
  EXPECT_TRUE(d.db->SatisfiesKeys());
}

TEST(TpchTest, CardinalitiesFollowScaleFactor) {
  Dataset d = SmallTpch();
  EXPECT_EQ(d.db->relation("region").size(), 5u);
  EXPECT_EQ(d.db->relation("nation").size(), 25u);
  EXPECT_EQ(d.db->relation("supplier").size(), 5u);
  EXPECT_EQ(d.db->relation("customer").size(), 75u);
  EXPECT_EQ(d.db->relation("part").size(), 100u);
  EXPECT_EQ(d.db->relation("partsupp").size(), 400u);
  EXPECT_EQ(d.db->relation("orders").size(), 750u);
  // 1..7 lineitems per order.
  size_t lines = d.db->relation("lineitem").size();
  EXPECT_GE(lines, 750u);
  EXPECT_LE(lines, 7u * 750u);
}

TEST(TpchTest, ForeignKeysAreValid) {
  Dataset d = SmallTpch();
  const Database& db = *d.db;
  for (const ForeignKey& fk : d.foreign_keys) {
    std::unordered_set<Value, ValueHash> targets;
    const Relation& target = db.relation(fk.target_rel);
    for (size_t row = 0; row < target.size(); ++row) {
      targets.insert(target.row(row)[fk.target_attr]);
    }
    const Relation& src = db.relation(fk.rel);
    for (size_t row = 0; row < src.size(); ++row) {
      ASSERT_TRUE(targets.count(src.row(row)[fk.attr]) > 0)
          << src.schema().name() << " attr " << fk.attr << " row " << row;
    }
  }
}

TEST(TpchTest, DatesAreInHorizon) {
  Dataset d = SmallTpch();
  const Relation& orders = d.db->relation("orders");
  for (size_t row = 0; row < orders.size(); ++row) {
    int64_t date = orders.row(row)[4].AsInt();
    EXPECT_GE(date, 19920101);
    EXPECT_LE(date, 19981231);
  }
  const Relation& lineitem = d.db->relation("lineitem");
  for (size_t row = 0; row < lineitem.size(); ++row) {
    // receiptdate (12) is after shipdate (10).
    EXPECT_GT(lineitem.row(row)[12].AsInt(), 0);
    EXPECT_GE(lineitem.row(row)[12].AsInt(), lineitem.row(row)[10].AsInt());
  }
}

TEST(TpchTest, DeterministicForSeed) {
  Dataset a = SmallTpch(5);
  Dataset b = SmallTpch(5);
  EXPECT_EQ(a.db->NumFacts(), b.db->NumFacts());
  EXPECT_EQ(a.db->relation("customer").row(10),
            b.db->relation("customer").row(10));
  Dataset c = SmallTpch(6);
  EXPECT_NE(a.db->relation("customer").row(10)[7],  // Random comment.
            c.db->relation("customer").row(10)[7]);
}

TEST(TpchTest, JoinsEvaluateNonEmpty) {
  Dataset d = SmallTpch();
  CqEvaluator eval(d.db.get());
  ConjunctiveQuery q = MustParseCq(
      *d.schema,
      "Q(NN) :- customer(CK, CN, CA, NK, CP, CB, CS, CC),"
      " nation(NK, NN, RK, NC).");
  EXPECT_TRUE(eval.HasAnswer(q));
  ConjunctiveQuery deep = MustParseCq(
      *d.schema,
      "Q() :- lineitem(OK, PK, SK, LN, QT, EP, DI, TX, RF, LS, SD, CD, RD,"
      " SI, SM, CM), orders(OK, CK, OS, TP, OD, OP, CL, SP, OC),"
      " customer(CK, CN, CA, NK, CP, CB, CS, CC).");
  EXPECT_TRUE(eval.HasAnswer(deep));
}

TEST(TpchTest, PartsuppHasFourSuppliersPerPart) {
  Dataset d = SmallTpch();
  EXPECT_EQ(d.db->relation("partsupp").size(),
            d.db->relation("part").size() * 4);
}

TEST(TpchDatesTest, DayOffsetConversion) {
  EXPECT_EQ(dates::DayOffsetToYmd(0), 19920101);
  EXPECT_EQ(dates::DayOffsetToYmd(30), 19920131);
  EXPECT_EQ(dates::DayOffsetToYmd(31), 19920201);
  EXPECT_EQ(dates::DayOffsetToYmd(59), 19920229);  // 1992 is a leap year.
  EXPECT_EQ(dates::DayOffsetToYmd(60), 19920301);
  EXPECT_EQ(dates::DayOffsetToYmd(366), 19930101);
  EXPECT_EQ(dates::DayOffsetToYmd(dates::kTpchNumDays - 1), 19981231);
}

}  // namespace
}  // namespace cqa
