#include "gen/workloads.h"

#include <gtest/gtest.h>

#include <set>

#include "gen/tpcds.h"
#include "gen/tpch.h"
#include "query/evaluator.h"

namespace cqa {
namespace {

TEST(WorkloadsTest, TpchWorkloadHasNinePositiveTemplates) {
  Schema schema = MakeTpchSchema();
  std::vector<NamedQuery> queries = TpchValidationQueries(schema);
  std::set<std::string> names;
  for (const NamedQuery& q : queries) names.insert(q.name);
  EXPECT_EQ(names, (std::set<std::string>{"Q1_H", "Q4_H", "Q5_H", "Q6_H",
                                          "Q8_H", "Q10_H", "Q12_H", "Q14_H",
                                          "Q19_H"}));
  for (const NamedQuery& q : queries) q.query.Validate(schema);
}

TEST(WorkloadsTest, TpcdsWorkloadHasEightTemplates) {
  Schema schema = MakeTpcdsSchema();
  std::vector<NamedQuery> queries = TpcdsValidationQueries(schema);
  EXPECT_EQ(queries.size(), 8u);
  for (const NamedQuery& q : queries) q.query.Validate(schema);
}

TEST(WorkloadsTest, BooleanAndProjectionShapes) {
  Schema schema = MakeTpchSchema();
  for (const NamedQuery& q : TpchValidationQueries(schema)) {
    if (q.name == "Q6_H" || q.name == "Q19_H") {
      EXPECT_TRUE(q.query.IsBoolean()) << q.name;
    } else {
      EXPECT_FALSE(q.query.IsBoolean()) << q.name;
    }
  }
}

TEST(WorkloadsTest, TpchQueriesNonEmptyOnGeneratedData) {
  TpchOptions options;
  options.scale_factor = 0.002;
  Dataset d = GenerateTpch(options);
  CqEvaluator eval(d.db.get());
  for (const NamedQuery& q : TpchValidationQueries(*d.schema)) {
    EXPECT_TRUE(eval.HasAnswer(q.query)) << q.name;
  }
}

TEST(WorkloadsTest, TpcdsQueriesNonEmptyOnGeneratedData) {
  TpcdsOptions options;
  options.scale_factor = 0.002;
  Dataset d = GenerateTpcds(options);
  CqEvaluator eval(d.db.get());
  for (const NamedQuery& q : TpcdsValidationQueries(*d.schema)) {
    EXPECT_TRUE(eval.HasAnswer(q.query)) << q.name;
  }
}

TEST(WorkloadsTest, JoinCountsAreNontrivial) {
  Schema schema = MakeTpchSchema();
  for (const NamedQuery& q : TpchValidationQueries(schema)) {
    if (q.name == "Q1_H" || q.name == "Q6_H") continue;  // Single scans.
    EXPECT_GE(q.query.NumJoins(), 1u) << q.name;
  }
}

}  // namespace
}  // namespace cqa
