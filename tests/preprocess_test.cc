#include "cqa/preprocess.h"

#include <gtest/gtest.h>

#include "query/parser.h"
#include "test_util.h"

namespace cqa {
namespace {

using testing::EmployeeFixture;

TEST(PreprocessTest, ExampleOneBooleanQuery) {
  // Example 1.1: do employees 1 and 2 work in the same department?
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(
      *fx.schema, "Q() :- employee(1, N1, D), employee(2, N2, D).");
  PreprocessResult result = BuildSynopses(*fx.db, q);
  ASSERT_EQ(result.NumAnswers(), 1u);  // The empty tuple.
  EXPECT_TRUE(result.answers()[0].answer.empty());
  const Synopsis& s = result.answers()[0].synopsis;
  // Two consistent images: (Bob-IT, Alice-IT) and (Bob-IT, Tim-IT);
  // both touch both blocks.
  EXPECT_EQ(s.NumImages(), 2u);
  EXPECT_EQ(s.NumBlocks(), 2u);
  EXPECT_EQ(result.stats().num_homomorphisms, 2u);
}

TEST(PreprocessTest, InconsistentImagesAreFiltered) {
  // Q asks for two distinct names with the same id: every homomorphism
  // maps both atoms into one block, and is consistent only if it picks
  // the same fact twice — those keep a single image fact.
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(
      *fx.schema, "Q() :- employee(I, 'Alice', D1), employee(I, 'Tim', D2).");
  PreprocessResult result = BuildSynopses(*fx.db, q);
  // Alice and Tim share id 2 but are different facts in the same block:
  // the only homomorphisms are inconsistent, so there is no synopsis.
  EXPECT_EQ(result.NumAnswers(), 0u);
}

TEST(PreprocessTest, SameFactTwiceIsConsistent) {
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(
      *fx.schema, "Q() :- employee(I, N, D), employee(I, N, D).");
  PreprocessResult result = BuildSynopses(*fx.db, q);
  ASSERT_EQ(result.NumAnswers(), 1u);
  // Images collapse to single facts: 4 facts -> 4 images.
  EXPECT_EQ(result.answers()[0].synopsis.NumImages(), 4u);
  for (const Synopsis::Image& image :
       result.answers()[0].synopsis.images()) {
    EXPECT_EQ(image.facts.size(), 1u);
  }
}

TEST(PreprocessTest, NonBooleanGroupsByAnswer) {
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(*fx.schema, "Q(N) :- employee(I, N, D).");
  PreprocessResult result = BuildSynopses(*fx.db, q);
  // Answers with positive frequency: Bob, Alice, Tim.
  EXPECT_EQ(result.NumAnswers(), 3u);
  size_t total_images = 0;
  for (const AnswerSynopsis& as : result.answers()) {
    total_images += as.synopsis.NumImages();
  }
  EXPECT_EQ(total_images, 4u);  // Bob has two witnessing facts.
  EXPECT_EQ(result.stats().num_images, 4u);
  EXPECT_EQ(result.stats().num_distinct_images, 4u);
}

TEST(PreprocessTest, BalanceDefinition) {
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(*fx.schema, "Q(N) :- employee(I, N, D).");
  PreprocessResult result = BuildSynopses(*fx.db, q);
  // |syn| = 3 answers, |∪H_i| = 4 images.
  EXPECT_NEAR(result.Balance(), 3.0 / 4.0, 1e-12);
}

TEST(PreprocessTest, BalanceOfEmptyQueryIsZero) {
  EmployeeFixture fx;
  ConjunctiveQuery q =
      MustParseCq(*fx.schema, "Q(N) :- employee(I, N, 'LEGAL').");
  PreprocessResult result = BuildSynopses(*fx.db, q);
  EXPECT_EQ(result.NumAnswers(), 0u);
  EXPECT_DOUBLE_EQ(result.Balance(), 0.0);
}

TEST(PreprocessTest, BlockSizesComeFromDatabase) {
  EmployeeFixture fx;
  ConjunctiveQuery q =
      MustParseCq(*fx.schema, "Q() :- employee(1, N, D).");
  PreprocessResult result = BuildSynopses(*fx.db, q);
  ASSERT_EQ(result.NumAnswers(), 1u);
  const Synopsis& s = result.answers()[0].synopsis;
  ASSERT_EQ(s.NumBlocks(), 1u);
  EXPECT_EQ(s.blocks()[0].size, 2u);  // Bob's block has two facts.
}

TEST(PreprocessTest, ImageFactRefsRecoverFacts) {
  EmployeeFixture fx;
  ConjunctiveQuery q =
      MustParseCq(*fx.schema, "Q() :- employee(2, N, D).");
  PreprocessResult result = BuildSynopses(*fx.db, q);
  std::vector<FactRef> facts = result.ImageFactRefs();
  ASSERT_EQ(facts.size(), 2u);  // Alice and Tim.
  EXPECT_EQ(fx.db->FactTuple(facts[0])[0], Value(2));
  EXPECT_EQ(fx.db->FactTuple(facts[1])[0], Value(2));
}

TEST(PreprocessTest, RelativeFrequencyFromSynopsisMatchesDefinition) {
  // R(H, B) of the Example 1.1 synopsis must be 0.5 (2 of 4 repairs).
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(
      *fx.schema, "Q() :- employee(1, N1, D), employee(2, N2, D).");
  PreprocessResult result = BuildSynopses(*fx.db, q);
  const Synopsis& s = result.answers()[0].synopsis;
  // Enumerate db(B): block sizes 2 and 2 -> 4 databases, 2 contain an
  // image ((IT, Alice-IT) and (IT, Tim-IT)).
  size_t hits = 0;
  for (uint32_t a = 0; a < 2; ++a) {
    for (uint32_t b = 0; b < 2; ++b) {
      if (s.AnyImageContainedIn({a, b})) ++hits;
    }
  }
  EXPECT_EQ(hits, 2u);
}

TEST(PreprocessTest, StatsTrackTime) {
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(*fx.schema, "Q(N) :- employee(I, N, D).");
  PreprocessResult result = BuildSynopses(*fx.db, q);
  EXPECT_GE(result.stats().seconds, 0.0);
}

}  // namespace
}  // namespace cqa
