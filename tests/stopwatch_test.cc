#include "common/stopwatch.h"

#include <limits>

#include <gtest/gtest.h>

namespace cqa {
namespace {

TEST(StopwatchTest, ElapsedIsNonNegativeAndMonotone) {
  Stopwatch watch;
  double a = watch.ElapsedSeconds();
  double b = watch.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch watch;
  volatile double sink = 0;
  // Plain assignment: compound assignment to a volatile operand is
  // deprecated in C++20.
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  double before = watch.ElapsedSeconds();
  watch.Restart();
  EXPECT_LE(watch.ElapsedSeconds(), before + 1.0);
}

TEST(DeadlineTest, DefaultNeverExpires) {
  Deadline d;
  EXPECT_FALSE(d.Expired());
  EXPECT_FALSE(Deadline::Infinite().Expired());
}

TEST(DeadlineTest, ZeroBudgetExpiresImmediately) {
  Deadline d(0.0);
  EXPECT_TRUE(d.Expired());
}

TEST(DeadlineTest, GenerousBudgetDoesNotExpire) {
  Deadline d(3600.0);
  EXPECT_FALSE(d.Expired());
  EXPECT_DOUBLE_EQ(d.limit_seconds(), 3600.0);
}

TEST(DeadlineTest, InfiniteDeadlineHasInfiniteRemaining) {
  EXPECT_EQ(Deadline().RemainingSeconds(),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(Deadline::Infinite().RemainingSeconds(),
            std::numeric_limits<double>::infinity());
}

TEST(DeadlineTest, ZeroBudgetHasZeroRemaining) {
  Deadline d(0.0);
  EXPECT_DOUBLE_EQ(d.RemainingSeconds(), 0.0);
}

TEST(DeadlineTest, RemainingIsClampedToBudget) {
  Deadline d(3600.0);
  double remaining = d.RemainingSeconds();
  EXPECT_GT(remaining, 0.0);
  EXPECT_LE(remaining, 3600.0);
  // Remaining budget only shrinks as time passes.
  EXPECT_LE(d.RemainingSeconds(), remaining);
}

}  // namespace
}  // namespace cqa
