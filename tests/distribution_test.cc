// Chi-square goodness-of-fit tests: the randomized components must draw
// from *exactly* the distributions the correctness lemmas assume, not
// merely have the right means.

#include <gtest/gtest.h>

#include <map>

#include "common/math_util.h"
#include "cqa/natural_sampler.h"
#include "cqa/symbolic_space.h"
#include "storage/block_index.h"
#include "storage/repairs.h"
#include "test_util.h"

namespace cqa {
namespace {

TEST(ChiSquareTest, StatisticBasics) {
  // Perfect fit has statistic 0.
  EXPECT_DOUBLE_EQ(ChiSquareStatistic({25, 25, 25, 25},
                                      {0.25, 0.25, 0.25, 0.25}),
                   0.0);
  // Known example: observed (10, 20, 30) against uniform over 60 draws.
  double stat = ChiSquareStatistic({10, 20, 30}, {1.0 / 3, 1.0 / 3, 1.0 / 3});
  EXPECT_NEAR(stat, 10.0, 1e-9);
}

TEST(ChiSquareTest, CriticalValuesAreSane) {
  // Reference 0.999-quantiles: df=1 -> 10.83, df=5 -> 20.52, df=10 -> 29.59.
  EXPECT_NEAR(ChiSquareCriticalValue(1), 10.83, 1.2);
  EXPECT_NEAR(ChiSquareCriticalValue(5), 20.52, 0.8);
  EXPECT_NEAR(ChiSquareCriticalValue(10), 29.59, 0.8);
}

TEST(DistributionTest, RngUniformIntIsUniform) {
  Rng rng(1);
  std::vector<size_t> counts(10, 0);
  const size_t n = 100000;
  for (size_t i = 0; i < n; ++i) ++counts[rng.UniformInt(0, 9)];
  std::vector<double> expected(10, 0.1);
  EXPECT_LT(ChiSquareStatistic(counts, expected),
            ChiSquareCriticalValue(9));
}

TEST(DistributionTest, WeightedIndexMatchesWeights) {
  Rng rng(2);
  std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
  std::vector<size_t> counts(4, 0);
  const size_t n = 100000;
  for (size_t i = 0; i < n; ++i) ++counts[rng.WeightedIndex(weights)];
  std::vector<double> expected{0.1, 0.2, 0.3, 0.4};
  EXPECT_LT(ChiSquareStatistic(counts, expected),
            ChiSquareCriticalValue(3));
}

TEST(DistributionTest, NaturalSamplerDrawsUniformDatabases) {
  // The natural space of a 2x3 block structure has 6 databases; the
  // sampler's internal choice must be uniform. We observe it through the
  // indicator pattern across a synopsis whose images distinguish all 6.
  Synopsis s;
  s.AddBlock(Synopsis::Block{2, 0, 0});
  s.AddBlock(Synopsis::Block{3, 0, 1});
  // One image per database: indicator = 1 iff that database is drawn.
  // Instead of instrumenting the sampler, test each singleton image's hit
  // frequency: P(image {(0,a),(1,b)} ⊆ I) = 1/6 for each (a, b).
  for (uint32_t a = 0; a < 2; ++a) {
    for (uint32_t b = 0; b < 3; ++b) {
      Synopsis single;
      single.AddBlock(Synopsis::Block{2, 0, 0});
      single.AddBlock(Synopsis::Block{3, 0, 1});
      single.AddImage({{0, a}, {1, b}});
      NaturalSampler sampler(&single);
      Rng rng(10 + a * 3 + b);
      size_t hits = 0;
      const size_t n = 60000;
      for (size_t i = 0; i < n; ++i) hits += sampler.Draw(rng) > 0.5;
      std::vector<size_t> counts{hits, n - hits};
      std::vector<double> expected{1.0 / 6, 5.0 / 6};
      EXPECT_LT(ChiSquareStatistic(counts, expected),
                ChiSquareCriticalValue(1))
          << "database (" << a << "," << b << ")";
    }
  }
}

TEST(DistributionTest, SymbolicSpaceElementIsUniform) {
  // S• for this synopsis: image 0 pins block 0 (3 dbs), image 1 pins both
  // blocks (1 db) -> |S•| = 4 elements, each with probability 1/4.
  Synopsis s;
  s.AddBlock(Synopsis::Block{2, 0, 0});
  s.AddBlock(Synopsis::Block{3, 0, 1});
  s.AddImage({{0, 0}});
  s.AddImage({{0, 1}, {1, 2}});
  SymbolicSpace space(&s);
  Rng rng(3);
  std::map<std::pair<size_t, std::vector<uint32_t>>, size_t> counts;
  const size_t n = 80000;
  Synopsis::Choice choice;
  for (size_t i = 0; i < n; ++i) {
    size_t idx = space.SampleElement(rng, &choice);
    ++counts[{idx, choice}];
  }
  ASSERT_EQ(counts.size(), 4u);
  std::vector<size_t> observed;
  for (const auto& [key, count] : counts) observed.push_back(count);
  std::vector<double> expected(4, 0.25);
  EXPECT_LT(ChiSquareStatistic(observed, expected),
            ChiSquareCriticalValue(3));
}

TEST(AliasTableTest, MassMatchesCumulativeSearchExactly) {
  // The alias table must encode the same distribution the old
  // cumulative-prefix binary search drew from: P(i) = w_i / W. With the
  // search, P(i) is the normalized weight by construction; here we
  // reconstruct each image's selection mass from the table — its own
  // column's acceptance probability plus the residual of every column
  // aliased to it, all over n columns — and compare against w_i / W.
  Rng gen_rng(31337);
  for (int t = 0; t < 8; ++t) {
    Synopsis s = testing::MakeRandomSynopsis(gen_rng, 6, 5, 8, 4);
    SymbolicSpace space(&s);
    const std::vector<double>& w = space.weights();
    const size_t n = w.size();
    std::vector<double> mass(n, 0.0);
    for (size_t k = 0; k < n; ++k) {
      ASSERT_GE(space.alias_prob()[k], 0.0);
      ASSERT_LE(space.alias_prob()[k], 1.0);
      ASSERT_LT(space.alias()[k], n);
      mass[k] += space.alias_prob()[k];
      mass[space.alias()[k]] += 1.0 - space.alias_prob()[k];
    }
    for (size_t i = 0; i < n; ++i) {
      double expected = w[i] / space.total_weight();
      EXPECT_NEAR(mass[i] / static_cast<double>(n), expected, 1e-12)
          << "image " << i << " of trial " << t;
    }
  }
}

TEST(AliasTableTest, SampleImageIndexPassesChiSquare) {
  // 1e5 alias draws against the normalized weights.
  Rng gen_rng(4096);
  Synopsis s = testing::MakeRandomSynopsis(gen_rng, 6, 5, 8, 4);
  SymbolicSpace space(&s);
  const std::vector<double>& w = space.weights();
  std::vector<size_t> counts(w.size(), 0);
  Rng rng(5);
  const size_t n = 100000;
  for (size_t i = 0; i < n; ++i) ++counts[space.SampleImageIndex(rng)];
  std::vector<double> expected;
  for (double wi : w) expected.push_back(wi / space.total_weight());
  EXPECT_LT(ChiSquareStatistic(counts, expected),
            ChiSquareCriticalValue(w.size() - 1));
}

TEST(DistributionTest, RepairSelectionViaSamplerIsUniform) {
  // End-to-end: repairs of Example 1.1 drawn through the natural space
  // cover all four repairs uniformly.
  testing::EmployeeFixture fx;
  BlockIndex index = BlockIndex::Build(*fx.db);
  Rng rng(4);
  std::map<std::pair<size_t, size_t>, size_t> counts;
  const size_t n = 40000;
  for (size_t i = 0; i < n; ++i) {
    size_t a = rng.UniformIndex(index.relation(0).block(0).size());
    size_t b = rng.UniformIndex(index.relation(0).block(1).size());
    ++counts[{a, b}];
  }
  ASSERT_EQ(counts.size(), 4u);
  std::vector<size_t> observed;
  for (const auto& [key, count] : counts) observed.push_back(count);
  EXPECT_LT(ChiSquareStatistic(observed, std::vector<double>(4, 0.25)),
            ChiSquareCriticalValue(3));
}

}  // namespace
}  // namespace cqa
