#include "storage/tbl_io.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "gen/tpch.h"
#include "test_util.h"

namespace cqa {
namespace {

using testing::EmployeeFixture;

class TblIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cqa_tbl_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& file) const {
    return (dir_ / file).string();
  }

  std::filesystem::path dir_;
};

TEST_F(TblIoTest, WriteProducesDbgenFormat) {
  EmployeeFixture fx;
  std::string error;
  ASSERT_TRUE(
      WriteTblFile(fx.db->relation("employee"), Path("e.tbl"), &error))
      << error;
  std::ifstream in(Path("e.tbl"));
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "1|Bob|HR|");
}

TEST_F(TblIoTest, RoundTripPreservesFacts) {
  EmployeeFixture fx;
  std::string error;
  ASSERT_TRUE(WriteTblDirectory(*fx.db, dir_.string(), &error)) << error;
  Database loaded(fx.schema.get());
  ASSERT_TRUE(ReadTblDirectory(&loaded, dir_.string(), &error)) << error;
  ASSERT_EQ(loaded.NumFacts(), fx.db->NumFacts());
  for (size_t row = 0; row < fx.db->relation(0).size(); ++row) {
    EXPECT_EQ(loaded.relation(0).row(row), fx.db->relation(0).row(row));
  }
}

TEST_F(TblIoTest, DoublesRoundTripExactly) {
  Schema schema;
  schema.AddRelation(RelationSchema(
      "m", {{"k", ValueType::kInt}, {"v", ValueType::kDouble}}, {0}));
  Database db(&schema);
  db.Insert("m", {Value(1), Value(0.1)});
  db.Insert("m", {Value(2), Value(1.0 / 3.0)});
  db.Insert("m", {Value(3), Value(-2.5e-17)});
  std::string error;
  ASSERT_TRUE(WriteTblDirectory(db, dir_.string(), &error)) << error;
  Database loaded(&schema);
  ASSERT_TRUE(ReadTblDirectory(&loaded, dir_.string(), &error)) << error;
  for (size_t row = 0; row < 3; ++row) {
    EXPECT_EQ(loaded.relation(0).row(row), db.relation(0).row(row));
  }
}

TEST_F(TblIoTest, TpchRoundTrip) {
  TpchOptions options;
  options.scale_factor = 0.0002;
  Dataset d = GenerateTpch(options);
  std::string error;
  ASSERT_TRUE(WriteTblDirectory(*d.db, dir_.string(), &error)) << error;
  Database loaded(d.schema.get());
  ASSERT_TRUE(ReadTblDirectory(&loaded, dir_.string(), &error)) << error;
  EXPECT_EQ(loaded.NumFacts(), d.db->NumFacts());
  EXPECT_TRUE(loaded.SatisfiesKeys());
  EXPECT_EQ(loaded.relation("lineitem").rows(),
            d.db->relation("lineitem").rows());
}

TEST_F(TblIoTest, RejectsStringsWithSeparator) {
  Schema schema;
  schema.AddRelation(RelationSchema("s", {{"v", ValueType::kString}}));
  Database db(&schema);
  db.Insert("s", {Value("bad|value")});
  std::string error;
  EXPECT_FALSE(WriteTblFile(db.relation(0), Path("s.tbl"), &error));
  EXPECT_NE(error.find("contains"), std::string::npos);
}

TEST_F(TblIoTest, ReadRejectsMalformedLines) {
  EmployeeFixture fx;
  std::string error;
  {
    std::ofstream out(Path("bad.tbl"));
    out << "1|Bob|HR|extra|\n";
  }
  Database db(fx.schema.get());
  EXPECT_FALSE(ReadTblFile(&db, "employee", Path("bad.tbl"), &error));
  EXPECT_NE(error.find("too many fields"), std::string::npos);

  {
    std::ofstream out(Path("bad2.tbl"));
    out << "1|Bob\n";
  }
  EXPECT_FALSE(ReadTblFile(&db, "employee", Path("bad2.tbl"), &error));

  {
    std::ofstream out(Path("bad3.tbl"));
    out << "notanint|Bob|HR|\n";
  }
  EXPECT_FALSE(ReadTblFile(&db, "employee", Path("bad3.tbl"), &error));
  EXPECT_NE(error.find("bad int"), std::string::npos);
}

TEST_F(TblIoTest, ReadUnknownRelationFails) {
  EmployeeFixture fx;
  Database db(fx.schema.get());
  std::string error;
  EXPECT_FALSE(ReadTblFile(&db, "ghost", Path("x.tbl"), &error));
  EXPECT_NE(error.find("unknown relation"), std::string::npos);
}

TEST_F(TblIoTest, MissingFileFails) {
  EmployeeFixture fx;
  Database db(fx.schema.get());
  std::string error;
  EXPECT_FALSE(ReadTblFile(&db, "employee", Path("absent.tbl"), &error));
}

TEST_F(TblIoTest, EmptyRelationWritesEmptyFile) {
  EmployeeFixture fx;
  Database db(fx.schema.get());
  std::string error;
  ASSERT_TRUE(WriteTblDirectory(db, dir_.string(), &error)) << error;
  Database loaded(fx.schema.get());
  ASSERT_TRUE(ReadTblDirectory(&loaded, dir_.string(), &error)) << error;
  EXPECT_EQ(loaded.NumFacts(), 0u);
}

}  // namespace
}  // namespace cqa
