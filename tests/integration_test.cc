// Cross-module integration tests: the full pipeline — TPC-H generation,
// query-aware noise, SQG/DQG queries, preprocessing, all four schemes —
// validated against the exact inclusion-exclusion oracle on real (small)
// scenario grids.

#include <gtest/gtest.h>

#include "bench/scenario.h"
#include "cqa/apx_cqa.h"
#include "cqa/exact.h"
#include "gen/noise.h"
#include "gen/tpch.h"
#include "gen/workloads.h"
#include "query/parser.h"

namespace cqa {
namespace {

TEST(IntegrationTest, SchemesMatchExactOracleOnScenarioGrid) {
  ScenarioGridOptions options;
  options.scale_factor = 0.0003;
  options.seed = 17;
  options.join_levels = {1, 2};
  options.queries_per_join = 1;
  options.noise_levels = {0.5};
  options.balance_targets = {0.0, 0.5};
  options.min_base_homomorphisms = 5;
  ScenarioGrid grid = ScenarioGrid::Build(options);
  ASSERT_FALSE(grid.pairs().empty());

  ApxParams params;
  params.epsilon = 0.1;
  params.delta = 0.05;
  size_t checked = 0;
  for (const ScenarioPair& pair : grid.pairs()) {
    PreprocessResult pre = BuildSynopses(*pair.db, pair.query);
    for (const AnswerSynopsis& as : pre.answers()) {
      std::optional<double> exact =
          ExactRatioInclusionExclusion(as.synopsis, /*max_images=*/16);
      if (!exact.has_value()) continue;  // Too many images for the oracle.
      for (SchemeKind kind : AllSchemeKinds()) {
        auto scheme = ApxRelativeFreqScheme::Create(kind);
        Rng rng(1000 + checked);
        ApxResult r = scheme->Run(as.synopsis, params, rng);
        ASSERT_FALSE(r.timed_out);
        EXPECT_NEAR(r.estimate, *exact, 2 * params.epsilon * *exact + 1e-9)
            << SchemeKindName(kind) << " vs exact on "
            << as.synopsis.DebugString();
      }
      if (++checked >= 12) return;  // A dozen synopses is plenty.
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(IntegrationTest, ValidationWorkloadRunsEndToEnd) {
  TpchOptions tpch;
  tpch.scale_factor = 0.0005;
  Dataset d = GenerateTpch(tpch);
  // The selective Q19 template: noise, preprocess, all schemes, compare
  // against the exact oracle (its synopsis is small).
  std::vector<NamedQuery> workload = TpchValidationQueries(*d.schema);
  const NamedQuery* q19 = nullptr;
  for (const NamedQuery& q : workload) {
    if (q.name == "Q19_H") q19 = &q;
  }
  ASSERT_NE(q19, nullptr);

  Rng rng(5);
  NoiseOptions noise;
  noise.p = 0.5;
  AddQueryAwareNoise(d.db.get(), q19->query, noise, rng);
  PreprocessResult pre = BuildSynopses(*d.db, q19->query);
  if (pre.NumAnswers() == 0) GTEST_SKIP() << "Q19 empty at this SF";
  const Synopsis& s = pre.answers()[0].synopsis;
  std::optional<double> exact = ExactRatioInclusionExclusion(s, 20);
  if (!exact.has_value()) GTEST_SKIP() << "synopsis too large for oracle";
  for (SchemeKind kind : AllSchemeKinds()) {
    auto scheme = ApxRelativeFreqScheme::Create(kind);
    Rng scheme_rng(6);
    ApxResult r =
        scheme->Run(s, ApxParams{0.1, 0.05}, scheme_rng);
    EXPECT_NEAR(r.estimate, *exact, 2 * 0.1 * *exact + 1e-9)
        << SchemeKindName(kind);
  }
}

TEST(IntegrationTest, FrequenciesSurviveNoiseMonotonicity) {
  // Growing a block can only decrease the frequency of answers whose
  // witnesses sit in that block (more repairs omit them). Sanity-check on
  // a single-atom query where this is exact: freq = 1/|block|.
  Schema schema;
  schema.AddRelation(RelationSchema(
      "r", {{"k", ValueType::kInt}, {"v", ValueType::kInt}}, {0}));
  Database db(&schema);
  for (int k = 0; k < 10; ++k) db.Insert("r", {Value(k), Value(k)});
  ConjunctiveQuery q = MustParseCq(schema, "Q(V) :- r(K, V).");

  Rng rng(8);
  NoiseOptions noise;
  noise.p = 1.0;
  AddQueryAwareNoise(&db, q, noise, rng);
  BlockIndex index = BlockIndex::Build(db);

  PreprocessResult pre = BuildSynopses(db, q);
  for (const AnswerSynopsis& as : pre.answers()) {
    double exact = *ExactRatioByEnumeration(as.synopsis);
    // An answer witnessed by a single fact in a single block of size s
    // has frequency exactly 1/s <= 1/2 after p = 1 noise.
    if (as.synopsis.NumImages() == 1 &&
        as.synopsis.images()[0].facts.size() == 1) {
      size_t s = as.synopsis.blocks()[0].size;
      EXPECT_GE(s, 2u);
      EXPECT_DOUBLE_EQ(exact, 1.0 / static_cast<double>(s));
    }
    Rng scheme_rng(9);
    auto scheme = ApxRelativeFreqScheme::Create(SchemeKind::kKlm);
    ApxResult r = scheme->Run(as.synopsis, ApxParams{0.1, 0.05}, scheme_rng);
    EXPECT_NEAR(r.estimate, exact, 2 * 0.1 * exact + 1e-9);
  }
}

TEST(IntegrationTest, CertainAnswersAreFrequencyOne) {
  // Facts outside every conflicting block yield frequency exactly 1; the
  // schemes must agree (their estimate is a ratio of identical counts).
  Schema schema;
  schema.AddRelation(RelationSchema(
      "r", {{"k", ValueType::kInt}, {"v", ValueType::kInt}}, {0}));
  Database db(&schema);
  db.Insert("r", {Value(1), Value(10)});  // Clean.
  db.Insert("r", {Value(2), Value(20)});  // Conflicted below.
  db.Insert("r", {Value(2), Value(21)});
  ConjunctiveQuery q = MustParseCq(schema, "Q(V) :- r(K, V).");
  for (SchemeKind kind : AllSchemeKinds()) {
    Rng rng(10);
    CqaRunResult run = ApxCqa(db, q, kind, ApxParams{}, rng);
    for (const CqaAnswer& a : run.answers) {
      if (a.tuple[0] == Value(10)) {
        EXPECT_DOUBLE_EQ(a.frequency, 1.0) << SchemeKindName(kind);
      } else {
        EXPECT_NEAR(a.frequency, 0.5, 0.15) << SchemeKindName(kind);
      }
    }
  }
}

}  // namespace
}  // namespace cqa
