// Property tests pitting the index-nested-loop evaluator against a
// brute-force oracle that tries every assignment of the query variables
// to the active domain.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "query/evaluator.h"
#include "query/parser.h"
#include "test_util.h"

namespace cqa {
namespace {

/// All answers of q over db by exhaustive assignment enumeration.
std::set<Tuple> BruteForceEvaluate(const Database& db,
                                   const ConjunctiveQuery& q) {
  // Active domain.
  std::vector<Value> domain;
  {
    std::unordered_set<Value, ValueHash> seen;
    for (size_t rid = 0; rid < db.NumRelations(); ++rid) {
      const Relation& rel = db.relation(rid);
      for (size_t row = 0; row < rel.size(); ++row) {
        for (const Value& v : rel.row(row)) {
          if (seen.insert(v).second) domain.push_back(v);
        }
      }
    }
  }
  // Fact lookup per relation.
  std::vector<std::set<Tuple>> facts(db.NumRelations());
  for (size_t rid = 0; rid < db.NumRelations(); ++rid) {
    const Relation& rel = db.relation(rid);
    for (size_t row = 0; row < rel.size(); ++row) {
      facts[rid].insert(rel.row(row));
    }
  }

  std::set<Tuple> answers;
  std::vector<size_t> choice(q.num_vars(), 0);
  while (true) {
    // Build the assignment and check every atom.
    bool holds = true;
    for (const Atom& atom : q.atoms()) {
      Tuple image;
      for (const Term& t : atom.terms) {
        image.push_back(t.is_constant() ? t.constant()
                                        : domain[choice[t.var()]]);
      }
      if (facts[atom.relation_id].count(image) == 0) {
        holds = false;
        break;
      }
    }
    if (holds) {
      Tuple answer;
      for (size_t v : q.answer_vars()) answer.push_back(domain[choice[v]]);
      answers.insert(std::move(answer));
    }
    // Odometer over assignments.
    size_t i = 0;
    for (; i < choice.size(); ++i) {
      if (++choice[i] < domain.size()) break;
      choice[i] = 0;
    }
    if (i == choice.size()) break;
  }
  return answers;
}

/// Random database over a 2-relation schema with small domains.
Database RandomDatabase(const Schema& schema, Rng& rng) {
  Database db(&schema);
  size_t r_rows = 3 + rng.UniformIndex(6);
  size_t s_rows = 3 + rng.UniformIndex(6);
  for (size_t i = 0; i < r_rows; ++i) {
    db.Insert("r", {Value(rng.UniformInt(0, 3)), Value(rng.UniformInt(0, 3))});
  }
  for (size_t i = 0; i < s_rows; ++i) {
    db.Insert("s", {Value(rng.UniformInt(0, 3)), Value(rng.UniformInt(0, 3))});
  }
  return db;
}

class EvaluatorOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(EvaluatorOracleTest, MatchesBruteForceOnRandomInstances) {
  Schema schema;
  schema.AddRelation(RelationSchema(
      "r", {{"a", ValueType::kInt}, {"b", ValueType::kInt}}));
  schema.AddRelation(RelationSchema(
      "s", {{"b", ValueType::kInt}, {"c", ValueType::kInt}}));
  const char* kQueries[] = {
      "Q(A, B) :- r(A, B).",
      "Q(A, C) :- r(A, B), s(B, C).",
      "Q(A) :- r(A, A).",
      "Q(B) :- r(A, B), s(B, 2).",
      "Q() :- r(A, B), s(B, A).",
      "Q(A) :- r(A, B), r(B, A).",
      "Q(C) :- r(1, B), s(B, C).",
  };
  Rng rng(900 + GetParam());
  Database db = RandomDatabase(schema, rng);
  CqEvaluator evaluator(&db);
  for (const char* text : kQueries) {
    ConjunctiveQuery q = MustParseCq(schema, text);
    std::vector<Tuple> fast = evaluator.Evaluate(q);
    std::set<Tuple> fast_set(fast.begin(), fast.end());
    EXPECT_EQ(fast_set.size(), fast.size()) << text << ": duplicates";
    EXPECT_EQ(fast_set, BruteForceEvaluate(db, q)) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, EvaluatorOracleTest,
                         ::testing::Range(0, 15));

TEST(EvaluatorOracleTest, HomomorphismCountMatchesSemantics) {
  // #homomorphisms of a full cross product equals |r|·|s|.
  Schema schema;
  schema.AddRelation(RelationSchema(
      "r", {{"a", ValueType::kInt}, {"b", ValueType::kInt}}));
  schema.AddRelation(RelationSchema(
      "s", {{"b", ValueType::kInt}, {"c", ValueType::kInt}}));
  Database db(&schema);
  for (int i = 0; i < 4; ++i) db.Insert("r", {Value(i), Value(i)});
  for (int i = 0; i < 3; ++i) db.Insert("s", {Value(i), Value(i)});
  CqEvaluator evaluator(&db);
  ConjunctiveQuery q =
      MustParseCq(schema, "Q() :- r(A, B), s(C, D).");
  EXPECT_EQ(evaluator.CountHomomorphisms(q), 12u);
}

}  // namespace
}  // namespace cqa
