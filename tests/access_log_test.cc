// Tests of serve/access_log — the JSONL line schema (parsed back with
// the serving JSON parser, so every emitted line is guaranteed valid
// JSON), the must-log policy for slow and failed requests, and the
// sampling counters. The schema assertions here are the contract
// documented in docs/protocol.md; loadgen --access-log re-checks it
// against a live server.

#include "serve/access_log.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/json.h"

namespace cqa::serve {
namespace {

AccessLogEntry MakeQueryEntry() {
  AccessLogEntry entry;
  entry.trace_id = "trace-1";
  entry.request_id = "req-1";
  entry.op = "query";
  entry.scheme = "KLM";
  entry.cache_hit = true;
  entry.code = ErrorCode::kOk;
  entry.timed_out = false;
  entry.timing.recorded = true;
  entry.timing.queue_wait_micros = 10;
  entry.timing.cache_micros = 20;
  entry.timing.preprocess_micros = 30;
  entry.timing.sample_micros = 40;
  entry.timing.encode_micros = 5;
  entry.timing.total_micros = 110;
  entry.total_samples = 1234;
  return entry;
}

JsonValue MustParseLine(const std::string& line) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  EXPECT_TRUE(JsonValue::Parse(line, &v, &error)) << error << ": " << line;
  EXPECT_TRUE(v.is_object());
  return v;
}

TEST(AccessLogFormatTest, QueryLineCarriesFullSchema) {
  JsonValue v = MustParseLine(
      AccessLog::FormatLine(MakeQueryEntry(), 1723000000123, false));
  EXPECT_EQ(v.GetNumber("unix_ms", 0), 1723000000123.0);
  EXPECT_EQ(v.GetString("op", ""), "query");
  EXPECT_EQ(v.GetString("trace_id", ""), "trace-1");
  EXPECT_EQ(v.GetString("id", ""), "req-1");
  EXPECT_EQ(v.GetNumber("code", -1), 0.0);
  EXPECT_EQ(v.GetString("code_name", ""), "ok");
  EXPECT_EQ(v.GetString("scheme", ""), "KLM");
  EXPECT_EQ(v.GetString("cache", ""), "hit");
  EXPECT_EQ(v.GetBool("timed_out", true), false);
  EXPECT_EQ(v.GetNumber("total_samples", 0), 1234.0);
  EXPECT_EQ(v.GetNumber("queue_wait_micros", -1), 10.0);
  EXPECT_EQ(v.GetNumber("cache_micros", -1), 20.0);
  EXPECT_EQ(v.GetNumber("preprocess_micros", -1), 30.0);
  EXPECT_EQ(v.GetNumber("sample_micros", -1), 40.0);
  EXPECT_EQ(v.GetNumber("encode_micros", -1), 5.0);
  EXPECT_EQ(v.GetNumber("total_micros", -1), 110.0);
  EXPECT_EQ(v.Find("slow"), nullptr);  // Only present on slow lines.
}

TEST(AccessLogFormatTest, OptionalFieldsAreOmitted) {
  AccessLogEntry entry;
  entry.op = "ping";
  entry.timing.total_micros = 3;
  JsonValue v = MustParseLine(AccessLog::FormatLine(entry, 1, false));
  EXPECT_EQ(v.Find("trace_id"), nullptr);
  EXPECT_EQ(v.Find("id"), nullptr);
  EXPECT_EQ(v.Find("scheme"), nullptr);  // Query op only.
  EXPECT_EQ(v.Find("cache"), nullptr);
  EXPECT_EQ(v.Find("total_samples"), nullptr);
  EXPECT_EQ(v.GetNumber("total_micros", -1), 3.0);
}

TEST(AccessLogFormatTest, ErrorQueryLineOmitsCacheFields) {
  AccessLogEntry entry = MakeQueryEntry();
  entry.code = ErrorCode::kNotFound;
  JsonValue v = MustParseLine(AccessLog::FormatLine(entry, 1, false));
  EXPECT_EQ(v.GetNumber("code", 0), 404.0);
  EXPECT_EQ(v.GetString("code_name", ""), "not_found");
  EXPECT_EQ(v.GetString("scheme", ""), "KLM");
  // Cache/timing outcome fields are only meaningful on success.
  EXPECT_EQ(v.Find("cache"), nullptr);
  EXPECT_EQ(v.Find("timed_out"), nullptr);
  EXPECT_EQ(v.Find("total_samples"), nullptr);
}

TEST(AccessLogFormatTest, SlowFlagAndEscaping) {
  AccessLogEntry entry = MakeQueryEntry();
  entry.trace_id = "evil\"\n\\id";
  JsonValue v = MustParseLine(AccessLog::FormatLine(entry, 1, true));
  EXPECT_EQ(v.GetBool("slow", false), true);
  EXPECT_EQ(v.GetString("trace_id", ""), "evil\"\n\\id");
}

TEST(AccessLogFormatTest, PhaseSumMatchesHelper) {
  AccessLogEntry entry = MakeQueryEntry();
  EXPECT_EQ(entry.timing.PhaseSumMicros(), 10u + 20 + 30 + 40 + 5);
}

class AccessLogFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("cqa_access_log_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".jsonl"))
                .string();
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::vector<std::string> Lines() const {
    std::ifstream in(path_);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
  }

  std::string path_;
};

TEST_F(AccessLogFileTest, AppendsOneLinePerRequest) {
  AccessLogOptions options;
  options.path = path_;
  AccessLog log(options);
  std::string error;
  ASSERT_TRUE(log.Open(&error)) << error;
  log.Append(MakeQueryEntry());
  log.Append(MakeQueryEntry());
  EXPECT_EQ(log.lines(), 2u);
  EXPECT_EQ(log.sampled_out(), 0u);
  EXPECT_EQ(Lines().size(), 2u);
}

TEST_F(AccessLogFileTest, SamplingDropsOnlyFastOkLines) {
  AccessLogOptions options;
  options.path = path_;
  options.sample_rate = 0.0;  // Sample everything out...
  options.slow_micros = 100;
  AccessLog log(options);
  std::string error;
  ASSERT_TRUE(log.Open(&error)) << error;

  AccessLogEntry fast_ok = MakeQueryEntry();
  fast_ok.timing.total_micros = 99;
  log.Append(fast_ok);  // Dropped by the sampler.

  AccessLogEntry slow_ok = MakeQueryEntry();
  slow_ok.timing.total_micros = 100;  // ...except slow requests...
  log.Append(slow_ok);

  AccessLogEntry fast_error = MakeQueryEntry();
  fast_error.timing.total_micros = 1;
  fast_error.code = ErrorCode::kOverloaded;  // ...and errors.
  log.Append(fast_error);

  EXPECT_EQ(log.lines(), 2u);
  EXPECT_EQ(log.sampled_out(), 1u);
  std::vector<std::string> lines = Lines();
  ASSERT_EQ(lines.size(), 2u);
  JsonValue slow_line = MustParseLine(lines[0] + "\n");
  EXPECT_EQ(slow_line.GetBool("slow", false), true);
  JsonValue error_line = MustParseLine(lines[1] + "\n");
  EXPECT_EQ(error_line.GetNumber("code", 0), 503.0);
}

TEST_F(AccessLogFileTest, SamplingIsDeterministicPerSeed) {
  AccessLogOptions options;
  options.path = path_;
  options.sample_rate = 0.5;
  options.slow_micros = 1u << 30;
  options.seed = 42;
  AccessLog log(options);
  std::string error;
  ASSERT_TRUE(log.Open(&error)) << error;
  for (int i = 0; i < 200; ++i) log.Append(MakeQueryEntry());
  // Every request was either written or counted as sampled out, and at
  // rate 0.5 both sides are comfortably populated.
  EXPECT_EQ(log.lines() + log.sampled_out(), 200u);
  EXPECT_GT(log.lines(), 50u);
  EXPECT_GT(log.sampled_out(), 50u);
  EXPECT_EQ(Lines().size(), log.lines());
}

TEST_F(AccessLogFileTest, OpenFailsOnBadPath) {
  AccessLogOptions options;
  options.path = "/nonexistent_dir_xyz/access.jsonl";
  AccessLog log(options);
  std::string error;
  EXPECT_FALSE(log.Open(&error));
  EXPECT_FALSE(error.empty());
  log.Append(MakeQueryEntry());  // Must be a safe no-op when closed.
  EXPECT_EQ(log.lines(), 0u);
}

}  // namespace
}  // namespace cqa::serve
