#include "cqa/image_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "test_util.h"

namespace cqa {
namespace {

using testing::MakeRandomSynopsis;

/// Draws a uniformly random full choice for the synopsis.
Synopsis::Choice RandomChoice(const Synopsis& s, Rng& rng) {
  Synopsis::Choice choice(s.blocks().size());
  for (size_t b = 0; b < choice.size(); ++b) {
    choice[b] = static_cast<uint32_t>(rng.UniformIndex(s.blocks()[b].size));
  }
  return choice;
}

/// The completed-image set reported by the index, sorted.
std::vector<uint32_t> IndexedContained(ImageIndex& index,
                                       const Synopsis::Choice& choice) {
  std::vector<uint32_t> contained;
  index.ForEachContainedImage(choice, [&](uint32_t image) {
    contained.push_back(image);
    return false;
  });
  std::sort(contained.begin(), contained.end());
  return contained;
}

/// The same set via the naive per-image containment scan.
std::vector<uint32_t> NaiveContained(const Synopsis& s,
                                     const Synopsis::Choice& choice) {
  std::vector<uint32_t> contained;
  for (uint32_t i = 0; i < s.NumImages(); ++i) {
    if (s.ImageContainedIn(i, choice)) contained.push_back(i);
  }
  return contained;
}

TEST(ImageIndexTest, MatchesNaiveContainmentScan) {
  Rng gen_rng(101);
  for (int t = 0; t < 10; ++t) {
    Synopsis s = MakeRandomSynopsis(gen_rng, 6, 4, 8, 4);
    ImageIndex index(&s);
    Rng rng(500 + t);
    for (int d = 0; d < 200; ++d) {
      Synopsis::Choice choice = RandomChoice(s, rng);
      EXPECT_EQ(IndexedContained(index, choice), NaiveContained(s, choice))
          << s.DebugString();
    }
  }
}

TEST(ImageIndexTest, GenerationStampsIsolateConsecutiveDraws) {
  // Re-running the same index must not leak hit counts between draws: a
  // choice processed twice in a row reports the same completions, and a
  // draw after a full-containment draw starts from zero hits.
  Rng gen_rng(202);
  Synopsis s = MakeRandomSynopsis(gen_rng, 5, 3, 6, 3);
  ImageIndex index(&s);
  Rng rng(7);
  for (int d = 0; d < 100; ++d) {
    Synopsis::Choice choice = RandomChoice(s, rng);
    std::vector<uint32_t> first = IndexedContained(index, choice);
    std::vector<uint32_t> second = IndexedContained(index, choice);
    EXPECT_EQ(first, second);
    EXPECT_EQ(first, NaiveContained(s, choice));
  }
}

TEST(ImageIndexTest, EarlyStopReturnsTrueAndHaltsScan) {
  // A one-fact image completes as soon as its fact is added; on_complete
  // returning true must stop the scan and surface the stop to the caller.
  Synopsis s;
  s.AddBlock(Synopsis::Block{2, 0, 0});
  s.AddBlock(Synopsis::Block{2, 0, 1});
  s.AddImage({{0, 0}});
  s.AddImage({{0, 0}, {1, 1}});
  ImageIndex index(&s);
  size_t calls = 0;
  bool stopped = index.ForEachContainedImage({0, 1}, [&](uint32_t image) {
    ++calls;
    EXPECT_EQ(image, 0u);  // Image 0 completes first (single fact).
    return true;
  });
  EXPECT_TRUE(stopped);
  EXPECT_EQ(calls, 1u);
}

TEST(TidDigitPlanTest, DigitsAreUniformPerBlock) {
  // The packed extraction must stay uniform within every block even when
  // many tids come out of one engine word: 3 * 4 * 5 * 1 * 16 fits in far
  // less than 32 bits, so one word feeds a whole pass.
  Synopsis s;
  const size_t kSizes[] = {3, 4, 5, 1, 16};
  for (size_t b = 0; b < 5; ++b) {
    s.AddBlock(Synopsis::Block{kSizes[b], 0, b});
  }
  s.AddImage({{0, 0}});
  TidDigitPlan plan(&s);
  Rng rng(4242);
  const int kDraws = 60000;
  std::vector<std::vector<int>> counts(5);
  for (size_t b = 0; b < 5; ++b) counts[b].assign(kSizes[b], 0);
  for (int d = 0; d < kDraws; ++d) {
    TidDigitPlan::Stream stream;
    for (size_t b = 0; b < 5; ++b) {
      uint32_t tid = plan.Next(rng, b, &stream);
      ASSERT_LT(tid, kSizes[b]);
      ++counts[b][tid];
    }
  }
  for (size_t b = 0; b < 5; ++b) {
    const double expected = double(kDraws) / double(kSizes[b]);
    for (size_t t = 0; t < kSizes[b]; ++t) {
      // 5 sigma of a binomial around the uniform expectation.
      const double sigma = std::sqrt(expected * (1.0 - 1.0 / kSizes[b]));
      EXPECT_NEAR(counts[b][t], expected, 5.0 * sigma + 1.0)
          << "block " << b << " tid " << t;
    }
  }
}

TEST(ImageIndexTest, IncrementalAddFactCompletesAtLastBlock) {
  // Feeding facts block by block (the indexed natural sampler's pattern)
  // completes an image exactly when its final fact arrives.
  Synopsis s;
  s.AddBlock(Synopsis::Block{2, 0, 0});
  s.AddBlock(Synopsis::Block{3, 0, 1});
  s.AddBlock(Synopsis::Block{2, 0, 2});
  s.AddImage({{0, 1}, {2, 0}});
  ImageIndex index(&s);
  index.BeginDraw();
  auto never = [](uint32_t) { return true; };
  EXPECT_FALSE(index.AddFact(0, 1, never));  // 1 of 2 facts.
  EXPECT_FALSE(index.AddFact(1, 2, never));  // Unrelated block.
  EXPECT_TRUE(index.AddFact(2, 0, never));   // Completes the image.
}

}  // namespace
}  // namespace cqa
