// Lock-ordering stress tests for the concurrent core. Each test drives
// one of the cross-class acquisition paths documented in the
// docs/architecture.md lock-hierarchy table — server queue/conns locks →
// admission → synopsis cache → engine db/preprocess locks, the stats op
// racing a graceful drain, and nested ThreadPool::Run — under enough
// concurrency that an ordering violation would deadlock (caught by the
// ctest timeout) or trip ThreadSanitizer's lock-inversion detector when
// built with the `tsan` preset.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "cqa/preprocess.h"
#include "gen/noise.h"
#include "gen/tpch.h"
#include "query/parser.h"
#include "serve/admission.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/synopsis_cache.h"
#include "storage/tbl_io.h"
#include "test_util.h"

namespace cqa::serve {
namespace {

constexpr const char* kQuery =
    "Q(NN) :- customer(CK, CN, CA, NK, CP, CB, CS, CC), "
    "nation(NK, NN, RK, NC).";

/// Shared on-disk dataset for the full-server paths (generated once,
/// read-only afterwards).
class DeadlockOrderTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::filesystem::path(
        std::filesystem::temp_directory_path() /
        ("cqa_deadlock_order_" + std::to_string(::getpid())));
    std::filesystem::create_directories(*dir_);
    Dataset d = GenerateTpch(TpchOptions{0.0003, 23});
    ConjunctiveQuery q = MustParseCq(*d.schema, kQuery);
    NoiseOptions noise;
    noise.p = 0.5;
    Rng rng(7);
    AddQueryAwareNoise(d.db.get(), q, noise, rng);
    std::string error;
    ASSERT_TRUE(WriteTblDirectory(*d.db, dir_->string(), &error)) << error;
  }

  static void TearDownTestSuite() {
    std::filesystem::remove_all(*dir_);
    delete dir_;
    dir_ = nullptr;
  }

  static Request MakeQueryRequest(uint64_t seed) {
    Request request;
    request.op = "query";
    request.schema = "tpch";
    request.data = dir_->string();
    request.query = kQuery;
    request.scheme = "KLM";
    request.seed = seed;
    return request;
  }

  static std::filesystem::path* dir_;
};

std::filesystem::path* DeadlockOrderTest::dir_ = nullptr;

// The deepest chain in the tree: every request crosses the server's
// queue_mu_/conns_mu_, the admission controller's mu_, the synopsis
// cache's mu_ (single-flight on one shared key), the engine's db_mu_,
// and the loaded database's preprocess_mu. A tight inflight bound plus
// identical keys maximizes contention on every lock in the chain at
// once; any held-across-acquire edge between them would wedge here.
TEST_F(DeadlockOrderTest, ServerAdmissionCacheEngineChainUnderContention) {
  ServerOptions options;
  options.workers = 8;
  options.max_inflight = 2;
  options.max_queue = 64;
  CqadServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  constexpr size_t kClients = 24;
  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  std::atomic<size_t> ok{0};
  for (size_t i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      CqaClient client;
      std::string client_error;
      if (!client.Connect("127.0.0.1", server.port(), &client_error)) {
        failures[i] = "connect: " + client_error;
        return;
      }
      // Two seeds: every request after the first flight hits the same
      // synopsis-cache entry while admission throttles to 2 at a time.
      Response response;
      if (!client.Call(MakeQueryRequest(1 + i % 2), &response,
                       &client_error)) {
        failures[i] = "call: " + client_error;
        return;
      }
      if (response.ok()) ++ok;
    });
  }
  for (std::thread& t : clients) t.join();
  for (size_t i = 0; i < kClients; ++i) {
    ASSERT_TRUE(failures[i].empty()) << failures[i];
  }
  // With max_queue = 64 > kClients nothing sheds: every request must
  // complete (a lost wakeup or ordering deadlock would hang the join
  // above instead).
  EXPECT_EQ(ok.load(), kClients);

  server.RequestDrain();
  server.Wait();
}

// The stats op reads conns_mu_, the admission gauges, and the cache
// counters while RequestDrain flips draining_, broadcasts on queue_mu_,
// shuts down admission (its mu_), and force-closes under conns_mu_ —
// the two paths touch the same locks from opposite directions in
// sequence, and must never hold one while taking the other.
TEST_F(DeadlockOrderTest, StatsOpsRacingGracefulDrain) {
  CqadServer server(ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  const int port = server.port();

  std::atomic<bool> stop{false};
  std::vector<std::thread> pollers;
  for (int t = 0; t < 4; ++t) {
    pollers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        CqaClient client;
        std::string client_error;
        if (!client.Connect("127.0.0.1", port, &client_error)) return;
        Request stats;
        stats.op = "stats";
        Response response;
        // Failures are expected once the drain lands (connection reset
        // or kDraining); the only wrong outcome is a hang.
        if (!client.Call(stats, &response, &client_error)) return;
        if (!response.ok()) return;
      }
    });
  }

  // Let the pollers get in flight, then drain out from under them.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.RequestDrain();
  server.Wait();
  stop.store(true);
  for (std::thread& t : pollers) t.join();
}

// Nested fork/join on the shared pool: tasks of an outer Run() issue
// inner Run() calls from many caller threads at once. The pool's mu_ is
// released around every task body, so the nested caller drains its own
// job instead of deadlocking on a worker that is itself waiting.
TEST_F(DeadlockOrderTest, NestedPoolRunFromConcurrentCallers) {
  ThreadPool pool(4);
  constexpr size_t kCallers = 6;
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 16;
  std::atomic<size_t> inner_total{0};
  std::vector<std::thread> callers;
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      pool.Run(kOuter, [&](size_t) {
        pool.Run(kInner, [&](size_t) {
          inner_total.fetch_add(1, std::memory_order_relaxed);
        });
      });
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(inner_total.load(), kCallers * kOuter * kInner);
}

// Single-flight builds racing Clear(): Clear drops completed entries
// while a build for the same key is in flight (the build runs with the
// cache lock released and re-inserts on completion), and fresh
// GetOrBuild calls pile onto both outcomes.
TEST_F(DeadlockOrderTest, CacheSingleFlightRacingClear) {
  SynopsisCache cache(8);
  auto slow_build = [](std::string*) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    testing::EmployeeFixture fixture;
    ConjunctiveQuery q =
        MustParseCq(*fixture.schema, "Q(N) :- employee(I, N, D).");
    return std::make_shared<const PreprocessResult>(
        BuildSynopses(*fixture.db, q));
  };

  constexpr size_t kThreads = 8;
  constexpr size_t kRounds = 20;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t round = 0; round < kRounds; ++round) {
        if (t == 0 && round % 3 == 0) cache.Clear();
        bool hit = false;
        std::string error;
        // Threads alternate between one hot shared key and a per-thread
        // key, so the same rounds mix single-flight piggybacking with
        // independent parallel builds.
        const std::string key =
            (round % 2 == 0) ? "hot" : "cold-" + std::to_string(t);
        auto value = cache.GetOrBuild(key, slow_build, &hit, &error);
        ASSERT_NE(value, nullptr) << error;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(cache.entries(), cache.capacity());
}

// Shutdown() must wake every parked Enter() waiter exactly into
// kShutdown — no lost wakeups (hang) and no spurious admissions.
TEST_F(DeadlockOrderTest, AdmissionShutdownWakesParkedWaiters) {
  AdmissionOptions options;
  options.max_inflight = 1;
  options.max_queue = 16;
  AdmissionController admission(options);

  ASSERT_EQ(admission.Enter(Deadline::Infinite()), Admission::kAdmitted);

  constexpr size_t kWaiters = 8;
  std::vector<std::thread> waiters;
  std::vector<Admission> results(kWaiters, Admission::kAdmitted);
  for (size_t i = 0; i < kWaiters; ++i) {
    waiters.emplace_back(
        [&, i] { results[i] = admission.Enter(Deadline::Infinite()); });
  }
  // Wait until all waiters are parked on the condition variable, then
  // shut down out from under them while the one slot is still held.
  while (admission.queued() < kWaiters) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  admission.Shutdown();
  for (std::thread& t : waiters) t.join();
  for (size_t i = 0; i < kWaiters; ++i) {
    EXPECT_EQ(results[i], Admission::kShutdown) << "waiter " << i;
  }
  admission.Leave(0.01);
}

}  // namespace
}  // namespace cqa::serve
