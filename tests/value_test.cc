#include "common/value.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <unordered_set>

namespace cqa {
namespace {

TEST(ValueTest, DefaultIsIntZero) {
  Value v;
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.AsInt(), 0);
}

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value(7).type(), ValueType::kInt);
  EXPECT_EQ(Value(int64_t{7}).type(), ValueType::kInt);
  EXPECT_EQ(Value(1.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value("x").type(), ValueType::kString);
  EXPECT_EQ(Value(std::string("x")).type(), ValueType::kString);
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value(2.25).AsDouble(), 2.25);
  EXPECT_EQ(Value("hello").AsString(), "hello");
}

TEST(ValueTest, EqualityIsTypeSensitive) {
  EXPECT_EQ(Value(1), Value(1));
  EXPECT_NE(Value(1), Value(2));
  EXPECT_NE(Value(1), Value(1.0));  // int 1 != double 1.0.
  EXPECT_EQ(Value("a"), Value(std::string("a")));
  EXPECT_NE(Value("a"), Value("b"));
}

TEST(ValueTest, OrderingIsTotalWithinAndAcrossTypes) {
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LT(Value(1.0), Value(2.0));
  EXPECT_LT(Value("a"), Value("b"));
  // Cross-type order follows the type tag: int < double < string.
  EXPECT_LT(Value(99), Value(0.5));
  EXPECT_LT(Value(99.0), Value("a"));
  std::set<Value> s{Value("z"), Value(1), Value(0.5), Value(2)};
  EXPECT_EQ(s.size(), 4u);
}

TEST(ValueTest, HashingMatchesEquality) {
  EXPECT_EQ(Value(7).Hash(), Value(7).Hash());
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
  std::unordered_set<Value, ValueHash> s;
  s.insert(Value(1));
  s.insert(Value(1));
  s.insert(Value(1.0));
  s.insert(Value("1"));
  EXPECT_EQ(s.size(), 3u);
}

TEST(ValueTest, ToStringQuotesStrings) {
  EXPECT_EQ(Value(12).ToString(), "12");
  EXPECT_EQ(Value("HR").ToString(), "'HR'");
  std::ostringstream os;
  os << Value(3);
  EXPECT_EQ(os.str(), "3");
}

TEST(ValueTest, TypeNames) {
  EXPECT_STREQ(ValueTypeName(ValueType::kInt), "int");
  EXPECT_STREQ(ValueTypeName(ValueType::kDouble), "double");
  EXPECT_STREQ(ValueTypeName(ValueType::kString), "string");
}

TEST(ValueTest, CopyAndMoveSemantics) {
  Value a("payload");
  Value b = a;
  EXPECT_EQ(a, b);
  Value c = std::move(a);
  EXPECT_EQ(c, b);
}

}  // namespace
}  // namespace cqa
