#include "cqa/synopsis.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace cqa {
namespace {

Synopsis TwoBlockSynopsis() {
  // Blocks of sizes 2 and 3; images {0:0}, {0:1, 1:2}.
  Synopsis s;
  s.AddBlock(Synopsis::Block{2, 0, 0});
  s.AddBlock(Synopsis::Block{3, 0, 1});
  s.AddImage({{0, 0}});
  s.AddImage({{0, 1}, {1, 2}});
  return s;
}

TEST(SynopsisTest, BlockAndImageCounts) {
  Synopsis s = TwoBlockSynopsis();
  EXPECT_EQ(s.NumBlocks(), 2u);
  EXPECT_EQ(s.NumImages(), 2u);
  EXPECT_FALSE(s.Empty());
  EXPECT_TRUE(Synopsis().Empty());
}

TEST(SynopsisTest, LogDbSize) {
  Synopsis s = TwoBlockSynopsis();
  EXPECT_NEAR(s.LogDbSize(), std::log10(6.0), 1e-12);
}

TEST(SynopsisTest, ImageWeights) {
  Synopsis s = TwoBlockSynopsis();
  std::vector<double> w = s.ImageWeights();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_NEAR(w[0], 0.5, 1e-12);          // 1/|B0|.
  EXPECT_NEAR(w[1], 1.0 / 6.0, 1e-12);    // 1/(|B0|·|B1|).
  EXPECT_NEAR(s.SymbolicToNaturalFactor(), 0.5 + 1.0 / 6.0, 1e-12);
}

TEST(SynopsisTest, ImageContainment) {
  Synopsis s = TwoBlockSynopsis();
  // Choice (0, 2): contains image 0 (block0=0) but not image 1.
  EXPECT_TRUE(s.ImageContainedIn(0, {0, 2}));
  EXPECT_FALSE(s.ImageContainedIn(1, {0, 2}));
  EXPECT_TRUE(s.AnyImageContainedIn({0, 2}));
  // Choice (1, 2): image 1 only.
  EXPECT_FALSE(s.ImageContainedIn(0, {1, 2}));
  EXPECT_TRUE(s.ImageContainedIn(1, {1, 2}));
  // Choice (1, 0): neither.
  EXPECT_FALSE(s.AnyImageContainedIn({1, 0}));
}

TEST(SynopsisTest, ImagesAreASet) {
  Synopsis s;
  s.AddBlock(Synopsis::Block{2, 0, 0});
  EXPECT_TRUE(s.AddImage({{0, 0}}));
  EXPECT_FALSE(s.AddImage({{0, 0}}));  // Duplicate.
  EXPECT_EQ(s.NumImages(), 1u);
}

TEST(SynopsisTest, ImageFactsAreSortedAndDeduped) {
  Synopsis s;
  s.AddBlock(Synopsis::Block{2, 0, 0});
  s.AddBlock(Synopsis::Block{2, 0, 1});
  s.AddImage({{1, 0}, {0, 1}, {1, 0}});
  const Synopsis::Image& image = s.images()[0];
  ASSERT_EQ(image.facts.size(), 2u);
  EXPECT_EQ(image.facts[0].block, 0u);
  EXPECT_EQ(image.facts[1].block, 1u);
}

TEST(SynopsisDeathTest, RejectsInconsistentImage) {
  Synopsis s;
  s.AddBlock(Synopsis::Block{3, 0, 0});
  EXPECT_DEATH(s.AddImage({{0, 0}, {0, 1}}), "inconsistent image");
}

TEST(SynopsisDeathTest, RejectsOutOfRangeTid) {
  Synopsis s;
  s.AddBlock(Synopsis::Block{2, 0, 0});
  EXPECT_DEATH(s.AddImage({{0, 5}}), "tid");
}

TEST(SynopsisDeathTest, RejectsEmptyImage) {
  Synopsis s;
  s.AddBlock(Synopsis::Block{2, 0, 0});
  EXPECT_DEATH(s.AddImage({}), "at least one fact");
}

TEST(SynopsisTest, RandomSynopsesAreWellFormed) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    Synopsis s = testing::MakeRandomSynopsis(rng, 6, 4, 5, 3);
    EXPECT_GE(s.NumImages(), 1u);
    double total = 0.0;
    for (double w : s.ImageWeights()) {
      EXPECT_GT(w, 0.0);
      EXPECT_LE(w, 1.0);
      total += w;
    }
    EXPECT_NEAR(s.SymbolicToNaturalFactor(), total, 1e-12);
  }
}

TEST(SynopsisTest, DebugStringMentionsStructure) {
  Synopsis s = TwoBlockSynopsis();
  std::string d = s.DebugString();
  EXPECT_NE(d.find("blocks=[2, 3]"), std::string::npos);
  EXPECT_NE(d.find("0:1 1:2"), std::string::npos);
}

}  // namespace
}  // namespace cqa
