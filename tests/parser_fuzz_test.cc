// Robustness: the parser must never crash or accept garbage silently —
// it either produces a validated query or a diagnostic. The seeded tests
// below are the always-on regression tier; the same driver is built as a
// libFuzzer harness for open-ended exploration (see fuzz/parser_fuzzer.cc
// and the `fuzz` CMake preset).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "common/rng.h"
#include "fuzz/parser_fuzz_driver.h"
#include "gen/tpch.h"
#include "query/parser.h"

namespace cqa {
namespace {

TEST(ParserFuzzTest, RandomBytesNeverCrash) {
  Schema schema = MakeTpchSchema();
  Rng rng(99);
  const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
      "(),.:-'\"_|{}[]<>=+*/\\ \t\n";
  for (int trial = 0; trial < 2000; ++trial) {
    size_t len = rng.UniformIndex(80);
    std::string text;
    text.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      text.push_back(alphabet[rng.UniformIndex(alphabet.size())]);
    }
    ConjunctiveQuery q;
    std::string error;
    if (ParseCq(schema, text, &q, &error)) {
      q.Validate(schema);  // Anything accepted must be well-formed.
    } else {
      EXPECT_FALSE(error.empty()) << "silent failure on: " << text;
    }
  }
}

TEST(ParserFuzzTest, MutatedValidQueriesNeverCrash) {
  Schema schema = MakeTpchSchema();
  const std::string base =
      "Q(NN) :- customer(CK, CN, CA, NK, CP, CB, CS, CC),"
      " nation(NK, NN, RK, NC).";
  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string text = base;
    // Apply 1-3 random single-character mutations.
    size_t mutations = 1 + rng.UniformIndex(3);
    for (size_t m = 0; m < mutations; ++m) {
      size_t pos = rng.UniformIndex(text.size());
      switch (rng.UniformIndex(3)) {
        case 0:
          text[pos] = static_cast<char>(rng.UniformInt(32, 126));
          break;
        case 1:
          text.erase(pos, 1);
          break;
        case 2:
          text.insert(pos, 1, static_cast<char>(rng.UniformInt(32, 126)));
          break;
      }
      if (text.empty()) text = "x";
    }
    ConjunctiveQuery q;
    std::string error;
    if (ParseCq(schema, text, &q, &error)) {
      q.Validate(schema);
    }
  }
}

TEST(ParserFuzzTest, DeepNestingAndLongInputs) {
  Schema schema = MakeTpchSchema();
  ConjunctiveQuery q;
  std::string error;
  // A very long but valid query: 200 copies of the same atom.
  std::string text = "Q(RK) :- ";
  for (int i = 0; i < 200; ++i) {
    if (i > 0) text += ", ";
    text += "region(RK, RN" + std::to_string(i) + ", RC" +
            std::to_string(i) + ")";
  }
  text += ".";
  ASSERT_TRUE(ParseCq(schema, text, &q, &error)) << error;
  EXPECT_EQ(q.NumAtoms(), 200u);
  // Pathological inputs.
  for (const char* bad :
       {"", "(", ")", ":-", ".", "Q", "Q(", "Q()", "Q() :-",
        "Q() :- ,", "''", "Q() :- region(", "Q((((((((((", "::::::::"}) {
    EXPECT_FALSE(ParseCq(schema, bad, &q, &error)) << bad;
  }
}

// Replays every checked-in fuzz corpus entry (seeds plus minimized past
// crashers) through the exact driver the libFuzzer harness uses, so
// corpus regressions stay covered even in builds without clang.
TEST(ParserFuzzTest, CorpusEntriesNeverCrash) {
  const std::filesystem::path corpus(CQABENCH_FUZZ_CORPUS_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(corpus)) << corpus;
  size_t entries = 0;
  for (const auto& item : std::filesystem::directory_iterator(corpus)) {
    if (!item.is_regular_file()) continue;
    std::ifstream in(item.path(), std::ios::binary);
    ASSERT_TRUE(in) << item.path();
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    fuzz::ParserOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
    ++entries;
  }
  EXPECT_GE(entries, 5u) << "corpus looks truncated: " << corpus;
}

// The driver itself honours the harness contract on edge inputs.
TEST(ParserFuzzTest, DriverHandlesEmptyAndBinaryInput) {
  EXPECT_EQ(fuzz::ParserOneInput(nullptr, 0), 0);
  const uint8_t binary[] = {0x00, 0xff, 0x51, 0x28, 0x00, 0x29, 0x2e};
  EXPECT_EQ(fuzz::ParserOneInput(binary, sizeof(binary)), 0);
}

}  // namespace
}  // namespace cqa
