#include "storage/database.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace cqa {
namespace {

using testing::EmployeeFixture;

TEST(TupleTest, ToString) {
  EXPECT_EQ(TupleToString({Value(1), Value("Bob"), Value("HR")}),
            "(1, 'Bob', 'HR')");
  EXPECT_EQ(TupleToString({}), "()");
}

TEST(TupleTest, Project) {
  Tuple t{Value(1), Value("Bob"), Value("HR")};
  EXPECT_EQ(ProjectTuple(t, {2, 0}), (Tuple{Value("HR"), Value(1)}));
  EXPECT_EQ(ProjectTuple(t, {}), Tuple{});
}

TEST(TupleTest, HashConsistentWithEquality) {
  TupleHash h;
  Tuple a{Value(1), Value("x")};
  Tuple b{Value(1), Value("x")};
  EXPECT_EQ(h(a), h(b));
}

TEST(RelationTest, InsertAndKeyOf) {
  EmployeeFixture fx;
  const Relation& rel = fx.db->relation("employee");
  EXPECT_EQ(rel.size(), 4u);
  EXPECT_EQ(rel.KeyOf(0), (Tuple{Value(1)}));
  EXPECT_EQ(rel.KeyOf(3), (Tuple{Value(2)}));
}

TEST(RelationTest, KeyOfWithoutKeyIsWholeTuple) {
  Schema schema;
  schema.AddRelation(RelationSchema("log", {{"msg", ValueType::kString}}));
  Database db(&schema);
  db.Insert("log", {Value("hello")});
  EXPECT_EQ(db.relation("log").KeyOf(0), (Tuple{Value("hello")}));
}

TEST(DatabaseTest, InsertReturnsStableFactRefs) {
  EmployeeFixture fx;
  FactRef f = fx.db->Insert("employee", {Value(9), Value("Zoe"), Value("HR")});
  EXPECT_EQ(f.row, 4u);
  EXPECT_EQ(fx.db->FactTuple(f)[1], Value("Zoe"));
}

TEST(DatabaseTest, NumFacts) {
  EmployeeFixture fx;
  EXPECT_EQ(fx.db->NumFacts(), 4u);
}

TEST(DatabaseTest, KeyViolationDetection) {
  EmployeeFixture fx;
  EXPECT_FALSE(fx.db->SatisfiesKeys());
  // Blocks {1: 2 facts, 2: 2 facts} -> one violation each.
  std::vector<KeyViolation> v = fx.db->FindKeyViolations();
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0].first.row, 0u);
  EXPECT_EQ(v[0].second.row, 1u);
}

TEST(DatabaseTest, ViolationLimitStopsEarly) {
  EmployeeFixture fx;
  EXPECT_EQ(fx.db->FindKeyViolations(1).size(), 1u);
}

TEST(DatabaseTest, ConsistentDatabaseHasNoViolations) {
  Schema schema;
  schema.AddRelation(RelationSchema(
      "r", {{"k", ValueType::kInt}, {"v", ValueType::kInt}}, {0}));
  Database db(&schema);
  db.Insert("r", {Value(1), Value(10)});
  db.Insert("r", {Value(2), Value(10)});
  EXPECT_TRUE(db.SatisfiesKeys());
}

TEST(DatabaseTest, IdenticalDuplicateFactIsNotAViolation) {
  // Databases are sets of facts; re-inserting the same fact does not
  // create a conflict under the paper's key semantics.
  Schema schema;
  schema.AddRelation(RelationSchema(
      "r", {{"k", ValueType::kInt}, {"v", ValueType::kInt}}, {0}));
  Database db(&schema);
  db.Insert("r", {Value(1), Value(10)});
  db.Insert("r", {Value(1), Value(10)});
  EXPECT_TRUE(db.SatisfiesKeys());
}

TEST(DatabaseTest, RelationsWithoutKeysNeverConflict) {
  Schema schema;
  schema.AddRelation(RelationSchema("log", {{"msg", ValueType::kString}}));
  Database db(&schema);
  db.Insert("log", {Value("a")});
  db.Insert("log", {Value("a")});
  EXPECT_TRUE(db.SatisfiesKeys());
}

TEST(DatabaseTest, CloneIsDeepAndIndependent) {
  EmployeeFixture fx;
  Database copy = fx.db->Clone();
  copy.Insert("employee", {Value(3), Value("Pat"), Value("HR")});
  EXPECT_EQ(copy.NumFacts(), 5u);
  EXPECT_EQ(fx.db->NumFacts(), 4u);
}

TEST(DatabaseDeathTest, ArityMismatchAborts) {
  EmployeeFixture fx;
  EXPECT_DEATH(fx.db->Insert("employee", {Value(1)}), "employee");
}

}  // namespace
}  // namespace cqa
