#ifndef CQABENCH_TESTS_TEST_UTIL_H_
#define CQABENCH_TESTS_TEST_UTIL_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "cqa/synopsis.h"
#include "storage/database.h"
#include "storage/schema.h"

namespace cqa {
namespace testing {

/// The running example of the paper (Example 1.1): Employee(id, name,
/// dept) with key(Employee) = {id} and facts
///   (1, Bob, HR) (1, Bob, IT) (2, Alice, IT) (2, Tim, IT),
/// which has exactly four repairs.
struct EmployeeFixture {
  EmployeeFixture() {
    schema = std::make_unique<Schema>();
    schema->AddRelation(RelationSchema("employee",
                                       {{"id", ValueType::kInt},
                                        {"name", ValueType::kString},
                                        {"dept", ValueType::kString}},
                                       {0}));
    db = std::make_unique<Database>(schema.get());
    db->Insert("employee", {Value(1), Value("Bob"), Value("HR")});
    db->Insert("employee", {Value(1), Value("Bob"), Value("IT")});
    db->Insert("employee", {Value(2), Value("Alice"), Value("IT")});
    db->Insert("employee", {Value(2), Value("Tim"), Value("IT")});
  }

  std::unique_ptr<Schema> schema;
  std::unique_ptr<Database> db;
};

/// A random admissible pair (H, B) for property tests: `num_blocks` blocks
/// with sizes in [1, max_block_size] (at least one of size >= 2) and up to
/// `max_images` consistent images touching up to `max_image_facts` blocks.
inline Synopsis MakeRandomSynopsis(Rng& rng, size_t num_blocks,
                                   size_t max_block_size, size_t max_images,
                                   size_t max_image_facts) {
  Synopsis synopsis;
  for (size_t b = 0; b < num_blocks; ++b) {
    size_t size = 1 + rng.UniformIndex(max_block_size);
    if (b == 0 && size < 2) size = 2;
    synopsis.AddBlock(Synopsis::Block{size, 0, b});
  }
  size_t num_images = 1 + rng.UniformIndex(max_images);
  for (size_t i = 0; i < num_images; ++i) {
    size_t num_facts = 1 + rng.UniformIndex(
                               std::min(max_image_facts, num_blocks));
    std::vector<size_t> blocks =
        rng.SampleWithoutReplacement(num_blocks, num_facts);
    std::vector<Synopsis::ImageFact> facts;
    for (size_t b : blocks) {
      facts.push_back(Synopsis::ImageFact{
          static_cast<uint32_t>(b),
          static_cast<uint32_t>(
              rng.UniformIndex(synopsis.blocks()[b].size))});
    }
    synopsis.AddImage(std::move(facts));
  }
  return synopsis;
}

/// Empirical mean of `n` draws from a sampler-like callable.
template <typename Fn>
double EmpiricalMean(Fn&& draw, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += draw();
  return sum / static_cast<double>(n);
}

}  // namespace testing
}  // namespace cqa

#endif  // CQABENCH_TESTS_TEST_UTIL_H_
