#include "query/evaluator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "query/parser.h"
#include "test_util.h"

namespace cqa {
namespace {

using testing::EmployeeFixture;

std::set<Tuple> AsSet(std::vector<Tuple> v) {
  return std::set<Tuple>(v.begin(), v.end());
}

TEST(EvaluatorTest, SingleAtomAllRows) {
  EmployeeFixture fx;
  CqEvaluator eval(fx.db.get());
  ConjunctiveQuery q = MustParseCq(*fx.schema, "Q(I, N) :- employee(I, N, D).");
  std::vector<Tuple> answers = eval.Evaluate(q);
  EXPECT_EQ(AsSet(answers),
            (std::set<Tuple>{{Value(1), Value("Bob")},
                             {Value(2), Value("Alice")},
                             {Value(2), Value("Tim")}}));
}

TEST(EvaluatorTest, ConstantSelection) {
  EmployeeFixture fx;
  CqEvaluator eval(fx.db.get());
  ConjunctiveQuery q =
      MustParseCq(*fx.schema, "Q(N) :- employee(I, N, 'IT').");
  EXPECT_EQ(AsSet(eval.Evaluate(q)),
            (std::set<Tuple>{{Value("Bob")}, {Value("Alice")}, {Value("Tim")}}));
}

TEST(EvaluatorTest, SelfJoinSameDepartment) {
  // The query of Example 1.1: do employees 1 and 2 share a department?
  EmployeeFixture fx;
  CqEvaluator eval(fx.db.get());
  ConjunctiveQuery q = MustParseCq(
      *fx.schema, "Q() :- employee(1, N1, D), employee(2, N2, D).");
  EXPECT_TRUE(eval.HasAnswer(q));
  // Homomorphisms: (Bob-IT, Alice-IT) and (Bob-IT, Tim-IT).
  EXPECT_EQ(eval.CountHomomorphisms(q), 2u);
}

TEST(EvaluatorTest, RepeatedVariableWithinAtom) {
  Schema schema;
  schema.AddRelation(RelationSchema(
      "e", {{"a", ValueType::kInt}, {"b", ValueType::kInt}}, {0}));
  Database db(&schema);
  db.Insert("e", {Value(1), Value(1)});
  db.Insert("e", {Value(2), Value(3)});
  CqEvaluator eval(&db);
  ConjunctiveQuery q = MustParseCq(schema, "Q(X) :- e(X, X).");
  EXPECT_EQ(eval.Evaluate(q), (std::vector<Tuple>{{Value(1)}}));
}

TEST(EvaluatorTest, EmptyResultWhenNoMatch) {
  EmployeeFixture fx;
  CqEvaluator eval(fx.db.get());
  ConjunctiveQuery q =
      MustParseCq(*fx.schema, "Q(N) :- employee(I, N, 'LEGAL').");
  EXPECT_TRUE(eval.Evaluate(q).empty());
  EXPECT_FALSE(eval.HasAnswer(q));
  EXPECT_EQ(eval.CountHomomorphisms(q), 0u);
}

TEST(EvaluatorTest, CountHomomorphismsRespectsLimit) {
  EmployeeFixture fx;
  CqEvaluator eval(fx.db.get());
  ConjunctiveQuery q = MustParseCq(*fx.schema, "Q() :- employee(I, N, D).");
  EXPECT_EQ(eval.CountHomomorphisms(q), 4u);
  EXPECT_EQ(eval.CountHomomorphisms(q, 2), 2u);
}

TEST(EvaluatorTest, HomomorphismImagesAreCorrect) {
  EmployeeFixture fx;
  CqEvaluator eval(fx.db.get());
  ConjunctiveQuery q =
      MustParseCq(*fx.schema, "Q() :- employee(1, N, D).");
  std::set<size_t> rows;
  eval.ForEachHomomorphism(q, [&](const Homomorphism& h) {
    EXPECT_EQ(h.image.size(), 1u);
    EXPECT_EQ(h.image[0].relation_id, 0u);
    rows.insert(h.image[0].row);
    return true;
  });
  EXPECT_EQ(rows, (std::set<size_t>{0, 1}));
}

TEST(EvaluatorTest, MultiHopJoin) {
  Schema schema;
  schema.AddRelation(RelationSchema(
      "edge", {{"src", ValueType::kInt}, {"dst", ValueType::kInt}}));
  Database db(&schema);
  db.Insert("edge", {Value(1), Value(2)});
  db.Insert("edge", {Value(2), Value(3)});
  db.Insert("edge", {Value(3), Value(4)});
  db.Insert("edge", {Value(2), Value(4)});
  CqEvaluator eval(&db);
  // Paths of length 2 from 1.
  ConjunctiveQuery q =
      MustParseCq(schema, "Q(Z) :- edge(1, Y), edge(Y, Z).");
  EXPECT_EQ(AsSet(eval.Evaluate(q)),
            (std::set<Tuple>{{Value(3)}, {Value(4)}}));
  // Triangle 2->3->4 with shortcut 2->4 exists.
  ConjunctiveQuery tri = MustParseCq(
      schema, "Q() :- edge(X, Y), edge(Y, Z), edge(X, Z).");
  EXPECT_TRUE(eval.HasAnswer(tri));
}

TEST(EvaluatorTest, TriangleDetection) {
  Schema schema;
  schema.AddRelation(RelationSchema(
      "edge", {{"src", ValueType::kInt}, {"dst", ValueType::kInt}}));
  Database db(&schema);
  db.Insert("edge", {Value(1), Value(2)});
  db.Insert("edge", {Value(2), Value(3)});
  CqEvaluator eval(&db);
  ConjunctiveQuery tri = MustParseCq(
      schema, "Q() :- edge(X, Y), edge(Y, Z), edge(X, Z).");
  EXPECT_FALSE(eval.HasAnswer(tri));
  db.Insert("edge", {Value(1), Value(3)});
  CqEvaluator eval2(&db);
  EXPECT_TRUE(eval2.HasAnswer(tri));
}

TEST(EvaluatorTest, SharedIndexCacheGivesSameResults) {
  EmployeeFixture fx;
  DatabaseIndexCache cache(fx.db.get());
  CqEvaluator a(fx.db.get(), &cache);
  CqEvaluator b(fx.db.get(), &cache);
  ConjunctiveQuery q =
      MustParseCq(*fx.schema, "Q(N) :- employee(2, N, D).");
  EXPECT_EQ(AsSet(a.Evaluate(q)), AsSet(b.Evaluate(q)));
}

TEST(EvaluatorTest, AnswerTupleProjectsAssignment) {
  EmployeeFixture fx;
  CqEvaluator eval(fx.db.get());
  ConjunctiveQuery q =
      MustParseCq(*fx.schema, "Q(D, N) :- employee(1, N, D).");
  std::set<Tuple> answers;
  eval.ForEachHomomorphism(q, [&](const Homomorphism& h) {
    answers.insert(h.AnswerTuple(q));
    return true;
  });
  EXPECT_EQ(answers, (std::set<Tuple>{{Value("HR"), Value("Bob")},
                                      {Value("IT"), Value("Bob")}}));
}

TEST(EvaluatorTest, StopEnumerationEarly) {
  EmployeeFixture fx;
  CqEvaluator eval(fx.db.get());
  ConjunctiveQuery q = MustParseCq(*fx.schema, "Q() :- employee(I, N, D).");
  size_t calls = 0;
  eval.ForEachHomomorphism(q, [&](const Homomorphism&) {
    ++calls;
    return false;
  });
  EXPECT_EQ(calls, 1u);
}

TEST(RelationIndexTest, LookupSemantics) {
  EmployeeFixture fx;
  RelationIndex index =
      RelationIndex::Build(fx.db->relation("employee"), {2});
  const std::vector<size_t>* it_rows = index.Lookup({Value("IT")});
  ASSERT_NE(it_rows, nullptr);
  EXPECT_EQ(*it_rows, (std::vector<size_t>{1, 2, 3}));
  EXPECT_EQ(index.Lookup({Value("LEGAL")}), nullptr);
}

}  // namespace
}  // namespace cqa
