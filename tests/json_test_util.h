#ifndef CQABENCH_TESTS_JSON_TEST_UTIL_H_
#define CQABENCH_TESTS_JSON_TEST_UTIL_H_

#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace cqa {
namespace testing {

/// A minimal JSON reader, enough to validate the exporters: parses one
/// object of scalars, strings, and balanced arrays/objects into
/// key -> raw value text. Nested values come back verbatim, so callers
/// can re-parse them with another MiniJson pass. Rejects malformed
/// syntax hard so the tests double as format validation.
class MiniJson {
 public:
  static bool ParseObject(const std::string& text,
                          std::map<std::string, std::string>* out) {
    MiniJson p(text);
    if (!p.Object(out)) return false;
    p.SkipSpace();
    return p.pos_ == text.size();
  }

 private:
  explicit MiniJson(const std::string& text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  bool String(std::string* out) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        if (pos_ + 1 >= text_.size()) return false;
        ++pos_;
      }
      out->push_back(text_[pos_++]);
    }
    return Consume('"') || (--pos_, false);
  }
  // A scalar (number / true / false) or a balanced array/object,
  // captured verbatim.
  bool Value(std::string* out) {
    SkipSpace();
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '"') {
      std::string s;
      if (!String(&s)) return false;
      *out = s;
      return true;
    }
    if (pos_ < text_.size() &&
        (text_[pos_] == '[' || text_[pos_] == '{')) {
      // Capture a balanced array/object verbatim, skipping over strings
      // so bracket characters inside names cannot unbalance the scan.
      int depth = 0;
      do {
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == '"') {
          std::string skipped;
          if (!String(&skipped)) return false;
          continue;
        }
        if (text_[pos_] == '[' || text_[pos_] == '{') ++depth;
        if (text_[pos_] == ']' || text_[pos_] == '}') --depth;
        ++pos_;
      } while (depth > 0);
      *out = text_.substr(start, pos_ - start);
      return true;
    }
    while (pos_ < text_.size() && text_[pos_] != ',' && text_[pos_] != '}' &&
           !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) return false;
    *out = text_.substr(start, pos_ - start);
    return true;
  }
  bool Object(std::map<std::string, std::string>* out) {
    if (!Consume('{')) return false;
    SkipSpace();
    if (Consume('}')) return true;
    while (true) {
      std::string key, value;
      if (!String(&key) || !Consume(':') || !Value(&value)) return false;
      (*out)[key] = value;
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

/// Parses a JSONL file into one MiniJson map per non-empty line,
/// EXPECT-failing on unreadable files or malformed lines.
inline std::vector<std::map<std::string, std::string>> ReadJsonl(
    const std::string& path) {
  std::vector<std::map<std::string, std::string>> records;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::map<std::string, std::string> record;
    EXPECT_TRUE(MiniJson::ParseObject(line, &record)) << line;
    records.push_back(std::move(record));
  }
  return records;
}

inline std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

}  // namespace testing
}  // namespace cqa

#endif  // CQABENCH_TESTS_JSON_TEST_UTIL_H_
