#include "storage/repairs.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "test_util.h"

namespace cqa {
namespace {

using testing::EmployeeFixture;

TEST(RepairsTest, ExampleOneHasFourRepairs) {
  EmployeeFixture fx;
  BlockIndex index = BlockIndex::Build(*fx.db);
  EXPECT_NEAR(CountRepairs(*fx.db, index), 4.0, 1e-9);
  size_t count = 0;
  EXPECT_TRUE(ForEachRepair(*fx.db, index,
                            [&](const std::vector<FactRef>&) {
                              ++count;
                              return true;
                            }));
  EXPECT_EQ(count, 4u);
}

TEST(RepairsTest, RepairsAreConsistentAndMaximal) {
  EmployeeFixture fx;
  BlockIndex index = BlockIndex::Build(*fx.db);
  ForEachRepair(*fx.db, index, [&](const std::vector<FactRef>& selection) {
    Database repair = MaterializeRepair(*fx.db, selection);
    EXPECT_TRUE(repair.SatisfiesKeys());
    // One fact per block: 2 blocks -> 2 facts.
    EXPECT_EQ(repair.NumFacts(), 2u);
    return true;
  });
}

TEST(RepairsTest, RepairsAreDistinct) {
  EmployeeFixture fx;
  BlockIndex index = BlockIndex::Build(*fx.db);
  std::set<std::vector<FactRef>> seen;
  ForEachRepair(*fx.db, index, [&](const std::vector<FactRef>& selection) {
    EXPECT_TRUE(seen.insert(selection).second);
    return true;
  });
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RepairsTest, ConsistentDatabaseHasExactlyItselfAsRepair) {
  Schema schema;
  schema.AddRelation(RelationSchema(
      "r", {{"k", ValueType::kInt}, {"v", ValueType::kInt}}, {0}));
  Database db(&schema);
  db.Insert("r", {Value(1), Value(2)});
  db.Insert("r", {Value(2), Value(2)});
  BlockIndex index = BlockIndex::Build(db);
  EXPECT_NEAR(CountRepairs(db, index), 1.0, 1e-12);
  size_t count = 0;
  ForEachRepair(db, index, [&](const std::vector<FactRef>& selection) {
    ++count;
    EXPECT_EQ(selection.size(), 2u);
    return true;
  });
  EXPECT_EQ(count, 1u);
}

TEST(RepairsTest, EmptyDatabaseHasOneEmptyRepair) {
  Schema schema;
  schema.AddRelation(RelationSchema("r", {{"k", ValueType::kInt}}, {0}));
  Database db(&schema);
  BlockIndex index = BlockIndex::Build(db);
  size_t count = 0;
  EXPECT_TRUE(ForEachRepair(db, index,
                            [&](const std::vector<FactRef>& selection) {
                              ++count;
                              EXPECT_TRUE(selection.empty());
                              return true;
                            }));
  EXPECT_EQ(count, 1u);
}

TEST(RepairsTest, EarlyStopViaCallback) {
  EmployeeFixture fx;
  BlockIndex index = BlockIndex::Build(*fx.db);
  size_t count = 0;
  EXPECT_FALSE(ForEachRepair(*fx.db, index,
                             [&](const std::vector<FactRef>&) {
                               return ++count < 2;
                             }));
  EXPECT_EQ(count, 2u);
}

TEST(RepairsTest, MaxRepairsCap) {
  EmployeeFixture fx;
  BlockIndex index = BlockIndex::Build(*fx.db);
  size_t count = 0;
  EXPECT_FALSE(ForEachRepair(
      *fx.db, index,
      [&](const std::vector<FactRef>&) {
        ++count;
        return true;
      },
      /*max_repairs=*/3));
  EXPECT_EQ(count, 3u);
}

TEST(RepairsTest, LogCountMultipliesAcrossRelations) {
  Schema schema;
  schema.AddRelation(RelationSchema(
      "a", {{"k", ValueType::kInt}, {"v", ValueType::kInt}}, {0}));
  schema.AddRelation(RelationSchema(
      "b", {{"k", ValueType::kInt}, {"v", ValueType::kInt}}, {0}));
  Database db(&schema);
  for (int i = 0; i < 3; ++i) db.Insert("a", {Value(1), Value(i)});
  for (int i = 0; i < 2; ++i) db.Insert("b", {Value(7), Value(i)});
  BlockIndex index = BlockIndex::Build(db);
  EXPECT_NEAR(CountRepairsLog10(db, index), std::log10(6.0), 1e-12);
}

TEST(RepairsTest, MaterializeRepairCopiesSelectedFacts) {
  EmployeeFixture fx;
  BlockIndex index = BlockIndex::Build(*fx.db);
  Database repair = MaterializeRepair(
      *fx.db, {FactRef{0, 1}, FactRef{0, 2}});
  EXPECT_EQ(repair.relation("employee").row(0),
            (Tuple{Value(1), Value("Bob"), Value("IT")}));
  EXPECT_EQ(repair.relation("employee").row(1),
            (Tuple{Value(2), Value("Alice"), Value("IT")}));
}

}  // namespace
}  // namespace cqa
