#include "gen/fk_graph.h"

#include <gtest/gtest.h>

#include "gen/tpch.h"

namespace cqa {
namespace {

TEST(FkGraphTest, EmptyInputGivesEmptyGraph) {
  FkGraph graph = FkGraph::Build({});
  EXPECT_TRUE(graph.empty());
}

TEST(FkGraphTest, SingleDependencyFormsOneClass) {
  FkGraph graph = FkGraph::Build({ForeignKey{1, 0, 0, 0}});
  ASSERT_EQ(graph.classes().size(), 1u);
  EXPECT_EQ(graph.classes()[0].size(), 2u);
}

TEST(FkGraphTest, TransitiveDependenciesMerge) {
  // a.0 -> b.0 and c.0 -> b.0: all three attributes joinable.
  FkGraph graph =
      FkGraph::Build({ForeignKey{0, 0, 1, 0}, ForeignKey{2, 0, 1, 0}});
  ASSERT_EQ(graph.classes().size(), 1u);
  EXPECT_EQ(graph.classes()[0].size(), 3u);
}

TEST(FkGraphTest, IndependentDependenciesStaySeparate) {
  FkGraph graph =
      FkGraph::Build({ForeignKey{0, 0, 1, 0}, ForeignKey{2, 1, 3, 1}});
  EXPECT_EQ(graph.classes().size(), 2u);
}

TEST(FkGraphTest, TpchGraphJoinsNationKeys) {
  Dataset tpch = GenerateTpch(TpchOptions{.scale_factor = 0.0002});
  FkGraph graph = FkGraph::Build(tpch.foreign_keys);
  EXPECT_FALSE(graph.empty());
  // c_nationkey, s_nationkey and n_nationkey must share a class.
  size_t nation = tpch.schema->RelationId("nation");
  size_t customer = tpch.schema->RelationId("customer");
  size_t supplier = tpch.schema->RelationId("supplier");
  AttrRef n{nation, 0}, c{customer, 3}, s{supplier, 3};
  bool found = false;
  for (const auto& cls : graph.classes()) {
    bool has_n = false, has_c = false, has_s = false;
    for (const AttrRef& a : cls) {
      if (a == n) has_n = true;
      if (a == c) has_c = true;
      if (a == s) has_s = true;
    }
    if (has_n && has_c && has_s) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(FkGraphTest, ClassesAreSortedAndDuplicateFree) {
  FkGraph graph = FkGraph::Build(
      {ForeignKey{0, 0, 1, 0}, ForeignKey{0, 0, 1, 0}, ForeignKey{1, 0, 0, 0}});
  ASSERT_EQ(graph.classes().size(), 1u);
  const auto& cls = graph.classes()[0];
  EXPECT_EQ(cls.size(), 2u);
  EXPECT_TRUE(cls[0] < cls[1]);
}

}  // namespace
}  // namespace cqa
