#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "cqa/parallel.h"
#include "obs/metrics.h"

namespace cqa {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_workers(), 3u);
  std::vector<std::atomic<int>> hits(100);
  for (auto& h : hits) h.store(0);
  pool.Run(hits.size(), [&](size_t t) { hits[t].fetch_add(1); });
  for (size_t t = 0; t < hits.size(); ++t) {
    EXPECT_EQ(hits[t].load(), 1) << "task " << t;
  }
}

TEST(ThreadPoolTest, ZeroWorkersRunsOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0u);
  size_t sum = 0;  // Plain variable: everything runs on this thread.
  pool.Run(10, [&](size_t t) { sum += t; });
  EXPECT_EQ(sum, 45u);
}

TEST(ThreadPoolTest, ZeroTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Run(0, [](size_t) { FAIL() << "no task should run"; });
}

TEST(ThreadPoolTest, EnsureWorkersReportsSpawnsAndNeverShrinks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.EnsureWorkers(3), 2u);
  EXPECT_EQ(pool.num_workers(), 3u);
  // Re-requesting a smaller or equal width is pure reuse.
  EXPECT_EQ(pool.EnsureWorkers(2), 0u);
  EXPECT_EQ(pool.EnsureWorkers(3), 0u);
  EXPECT_EQ(pool.num_workers(), 3u);
}

TEST(ThreadPoolTest, SideEffectsVisibleAfterRun) {
  // Run() promises a happens-before edge: plain writes from tasks are
  // readable without atomics afterwards.
  ThreadPool pool(4);
  std::vector<size_t> out(64, 0);
  pool.Run(out.size(), [&](size_t t) { out[t] = t * t; });
  for (size_t t = 0; t < out.size(); ++t) EXPECT_EQ(out[t], t * t);
}

TEST(ThreadPoolTest, NestedRunDoesNotDeadlock) {
  // A task that itself calls Run() must complete even when every pool
  // worker is occupied by the outer job: the nested caller drains its
  // own tasks.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.Run(4, [&](size_t) {
    pool.Run(8, [&](size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(ThreadPoolTest, ReusedAcrossManyRuns) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.Run(10, [&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 500);
}

/// A sampler with a known Bernoulli(p) distribution.
class BernoulliSampler : public Sampler {
 public:
  explicit BernoulliSampler(double p) : p_(p) {}
  double Draw(Rng& rng) override { return rng.Bernoulli(p_) ? 1.0 : 0.0; }
  double GoodnessFactor() const override { return 1.0; }
  const char* name() const override { return "bernoulli"; }

 private:
  double p_;
};

// The launch/reuse counters compile out under -DCQABENCH_NO_OBS; the
// pool itself is still exercised by every other test in this file.
#ifndef CQABENCH_NO_OBS
TEST(ThreadPoolTest, ParallelMonteCarloSpawnsZeroThreadsInSteadyState) {
  // The acceptance criterion of the pooled scheme layer: after a warm-up
  // call, ParallelMonteCarloEstimate must serve every further call from
  // the existing workers — zero thread launches, pool_reuses ticking.
  obs::Registry& registry = obs::Registry::Instance();
  SamplerFactory factory = [] {
    return std::make_unique<BernoulliSampler>(0.4);
  };
  Rng rng(17);
  auto run_once = [&] {
    MonteCarloResult r =
        ParallelMonteCarloEstimate(factory, 2, 0.2, 0.2, rng);
    EXPECT_FALSE(r.timed_out);
    EXPECT_NEAR(r.estimate, 0.4, 0.15);
  };
  run_once();  // Warm-up: may spawn the two-wide pool.
  const uint64_t launched = registry.CounterValue("parallel.workers_launched");
  const uint64_t reuses = registry.CounterValue("parallel.pool_reuses");
  for (int i = 0; i < 3; ++i) run_once();
  EXPECT_EQ(registry.CounterValue("parallel.workers_launched"), launched)
      << "steady-state call spawned threads";
  EXPECT_EQ(registry.CounterValue("parallel.pool_reuses"), reuses + 3);
}
#endif  // CQABENCH_NO_OBS

}  // namespace
}  // namespace cqa
