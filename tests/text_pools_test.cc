#include "gen/text_pools.h"

#include <gtest/gtest.h>

#include <set>

namespace cqa {
namespace {

TEST(TextPoolsTest, FixedPoolSizes) {
  EXPECT_EQ(text_pools::Regions().size(), 5u);
  EXPECT_EQ(text_pools::Nations().size(), 25u);
  EXPECT_EQ(text_pools::MarketSegments().size(), 5u);
  EXPECT_EQ(text_pools::OrderPriorities().size(), 5u);
  EXPECT_EQ(text_pools::ShipModes().size(), 7u);
  EXPECT_EQ(text_pools::ShipInstructions().size(), 4u);
}

TEST(TextPoolsTest, NationRegionsAreValidIndexes) {
  for (size_t n = 0; n < 25; ++n) {
    EXPECT_LT(text_pools::NationRegion(n), 5u);
  }
}

TEST(TextPoolsTest, PaddedFormatsLikeDbgen) {
  EXPECT_EQ(text_pools::Padded("Supplier#", 17, 9), "Supplier#000000017");
  EXPECT_EQ(text_pools::Padded("Clerk#", 1000, 4), "Clerk#1000");
  EXPECT_EQ(text_pools::Padded("X", 12345, 3), "X12345");
}

TEST(TextPoolsTest, RandomBrandShape) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    std::string b = text_pools::RandomBrand(rng);
    ASSERT_EQ(b.size(), 8u) << b;
    EXPECT_EQ(b.substr(0, 6), "Brand#");
    EXPECT_TRUE(b[6] >= '1' && b[6] <= '5');
    EXPECT_TRUE(b[7] >= '1' && b[7] <= '5');
  }
}

TEST(TextPoolsTest, PartTypeHasThreeSyllables) {
  Rng rng(2);
  std::set<std::string> seen;
  for (int i = 0; i < 200; ++i) {
    std::string t = text_pools::RandomPartType(rng);
    EXPECT_EQ(std::count(t.begin(), t.end(), ' '), 2) << t;
    seen.insert(t);
  }
  EXPECT_GT(seen.size(), 20u);  // 150 combinations exist.
}

TEST(TextPoolsTest, PhoneShape) {
  Rng rng(3);
  std::string p = text_pools::RandomPhone(rng, 7);
  // "17-DDD-DDD-DDDD".
  EXPECT_EQ(p.substr(0, 3), "17-");
  EXPECT_EQ(std::count(p.begin(), p.end(), '-'), 3) << p;
}

TEST(DatesTest, HorizonBoundaries) {
  EXPECT_EQ(dates::DayOffsetToYmd(0), 19920101);
  EXPECT_EQ(dates::DayOffsetToYmd(dates::kTpchNumDays - 1), 19981231);
}

TEST(DatesTest, MonotoneAndValid) {
  int64_t prev = 0;
  for (int64_t d = 0; d < dates::kTpchNumDays; ++d) {
    int64_t ymd = dates::DayOffsetToYmd(d);
    EXPECT_GT(ymd, prev);
    int64_t month = (ymd / 100) % 100;
    int64_t day = ymd % 100;
    EXPECT_GE(month, 1);
    EXPECT_LE(month, 12);
    EXPECT_GE(day, 1);
    EXPECT_LE(day, 31);
    prev = ymd;
  }
}

TEST(DatesTest, RandomDatesStayInHorizon) {
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    int64_t ymd = dates::RandomTpchDate(rng);
    EXPECT_GE(ymd, 19920101);
    EXPECT_LE(ymd, 19981231);
  }
}

}  // namespace
}  // namespace cqa
