// Tests of serve/metrics_http — request-line routing (the whole parser
// surface), the health flip between serving and draining, and one real
// socket round trip against the background accept loop.

#include "serve/metrics_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include <gtest/gtest.h>

namespace cqa::serve {
namespace {

MetricsHttpOptions TestOptions(bool healthy) {
  MetricsHttpOptions options;
  options.metrics_body = [] {
    return std::string("# TYPE cqa_up gauge\ncqa_up 1\n");
  };
  options.healthy = [healthy] { return healthy; };
  return options;
}

TEST(MetricsHttpRoutingTest, MetricsServesTheBodyProvider) {
  MetricsHttpServer server(TestOptions(true));
  std::string response = server.HandleRequestLine("GET /metrics HTTP/1.1");
  EXPECT_NE(response.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(response.find("\r\n\r\n# TYPE cqa_up gauge\ncqa_up 1\n"),
            std::string::npos);
  // Query strings are stripped before routing.
  EXPECT_NE(server.HandleRequestLine("GET /metrics?format=raw HTTP/1.1")
                .find("200 OK"),
            std::string::npos);
}

TEST(MetricsHttpRoutingTest, HealthzTracksTheProbe) {
  MetricsHttpServer healthy(TestOptions(true));
  std::string response = healthy.HandleRequestLine("GET /healthz HTTP/1.1");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("ok\n"), std::string::npos);

  MetricsHttpServer draining(TestOptions(false));
  response = draining.HandleRequestLine("GET /healthz HTTP/1.1");
  EXPECT_NE(response.find("503 Service Unavailable"), std::string::npos);
  EXPECT_NE(response.find("draining\n"), std::string::npos);
}

TEST(MetricsHttpRoutingTest, RejectsEverythingElse) {
  MetricsHttpServer server(TestOptions(true));
  EXPECT_NE(server.HandleRequestLine("POST /metrics HTTP/1.1")
                .find("405 Method Not Allowed"),
            std::string::npos);
  EXPECT_NE(server.HandleRequestLine("GET /other HTTP/1.1")
                .find("404 Not Found"),
            std::string::npos);
  EXPECT_NE(server.HandleRequestLine("GET / HTTP/1.1").find("404"),
            std::string::npos);
  EXPECT_NE(server.HandleRequestLine("garbage").find("400 Bad Request"),
            std::string::npos);
  EXPECT_NE(server.HandleRequestLine("").find("400"), std::string::npos);
}

// One real scrape over TCP: Start on an ephemeral port, speak just
// enough HTTP with a raw socket, assert the exposition body arrives.
TEST(MetricsHttpSocketTest, ServesScrapesOverTcp) {
  MetricsHttpServer server(TestOptions(true));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_GT(server.port(), 0);

  for (int round = 0; round < 2; ++round) {  // Serial reuse works.
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(server.port()));
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    const char request[] = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
    ASSERT_EQ(::send(fd, request, sizeof(request) - 1, 0),
              static_cast<ssize_t>(sizeof(request) - 1));
    std::string response;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
      response.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(response.find("cqa_up 1"), std::string::npos);
  }

  server.Stop();
  server.Stop();  // Idempotent.
}

TEST(MetricsHttpSocketTest, StartFailsOnOccupiedPort) {
  MetricsHttpServer first(TestOptions(true));
  std::string error;
  ASSERT_TRUE(first.Start(&error)) << error;
  MetricsHttpOptions occupied = TestOptions(true);
  occupied.port = first.port();
  MetricsHttpServer second(occupied);
  EXPECT_FALSE(second.Start(&error));
  EXPECT_FALSE(error.empty());
  first.Stop();
}

}  // namespace
}  // namespace cqa::serve
