// Tests of serve/metrics_http — request-line routing (the whole parser
// surface), the health flip between serving and draining, real socket
// round trips against the background accept loop, and the concurrency
// semantics of /debug/pprof/profile (overlap → 409, drain mid-profile
// → partial 200 while /metrics scrapes keep answering).

#include "serve/metrics_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#ifndef CQABENCH_NO_OBS
#include "obs/profiler.h"
#endif

namespace cqa::serve {
namespace {

// True when this build can actually run a collection (the endpoint
// answers 501 otherwise — NO_OBS or sanitizer builds).
bool ProfilerUsable() {
#ifdef CQABENCH_NO_OBS
  return false;
#else
  return obs::Profiler::kAvailable;
#endif
}

MetricsHttpOptions TestOptions(bool healthy) {
  MetricsHttpOptions options;
  options.metrics_body = [] {
    return std::string("# TYPE cqa_up gauge\ncqa_up 1\n");
  };
  options.healthy = [healthy] { return healthy; };
  return options;
}

TEST(MetricsHttpRoutingTest, MetricsServesTheBodyProvider) {
  MetricsHttpServer server(TestOptions(true));
  std::string response = server.HandleRequestLine("GET /metrics HTTP/1.1");
  EXPECT_NE(response.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(response.find("\r\n\r\n# TYPE cqa_up gauge\ncqa_up 1\n"),
            std::string::npos);
  // Query strings are stripped before routing.
  EXPECT_NE(server.HandleRequestLine("GET /metrics?format=raw HTTP/1.1")
                .find("200 OK"),
            std::string::npos);
}

TEST(MetricsHttpRoutingTest, HealthzTracksTheProbe) {
  MetricsHttpServer healthy(TestOptions(true));
  std::string response = healthy.HandleRequestLine("GET /healthz HTTP/1.1");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("ok\n"), std::string::npos);

  MetricsHttpServer draining(TestOptions(false));
  response = draining.HandleRequestLine("GET /healthz HTTP/1.1");
  EXPECT_NE(response.find("503 Service Unavailable"), std::string::npos);
  EXPECT_NE(response.find("draining\n"), std::string::npos);
}

TEST(MetricsHttpRoutingTest, RejectsEverythingElse) {
  MetricsHttpServer server(TestOptions(true));
  EXPECT_NE(server.HandleRequestLine("POST /metrics HTTP/1.1")
                .find("405 Method Not Allowed"),
            std::string::npos);
  EXPECT_NE(server.HandleRequestLine("GET /other HTTP/1.1")
                .find("404 Not Found"),
            std::string::npos);
  EXPECT_NE(server.HandleRequestLine("GET / HTTP/1.1").find("404"),
            std::string::npos);
  EXPECT_NE(server.HandleRequestLine("garbage").find("400 Bad Request"),
            std::string::npos);
  EXPECT_NE(server.HandleRequestLine("").find("400"), std::string::npos);
}

// One real scrape over TCP: Start on an ephemeral port, speak just
// enough HTTP with a raw socket, assert the exposition body arrives.
TEST(MetricsHttpSocketTest, ServesScrapesOverTcp) {
  MetricsHttpServer server(TestOptions(true));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_GT(server.port(), 0);

  for (int round = 0; round < 2; ++round) {  // Serial reuse works.
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(server.port()));
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    const char request[] = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
    ASSERT_EQ(::send(fd, request, sizeof(request) - 1, 0),
              static_cast<ssize_t>(sizeof(request) - 1));
    std::string response;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
      response.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(response.find("cqa_up 1"), std::string::npos);
  }

  server.Stop();
  server.Stop();  // Idempotent.
}

TEST(MetricsHttpRoutingTest, PprofEndpointsRoute) {
  MetricsHttpServer server(TestOptions(true));
  const std::string index =
      server.HandleRequestLine("GET /debug/pprof/ HTTP/1.1");
  EXPECT_NE(index.find("200 OK"), std::string::npos);
  EXPECT_NE(index.find("profile?seconds="), std::string::npos);
  // Both spellings of the index route.
  EXPECT_NE(server.HandleRequestLine("GET /debug/pprof HTTP/1.1")
                .find("200 OK"),
            std::string::npos);

  const std::string heap =
      server.HandleRequestLine("GET /debug/pprof/heap HTTP/1.1");
  EXPECT_NE(heap.find("200 OK"), std::string::npos);
  EXPECT_NE(heap.find("rss_bytes"), std::string::npos);

  const std::string threads =
      server.HandleRequestLine("GET /debug/pprof/threads HTTP/1.1");
  EXPECT_NE(threads.find("200 OK"), std::string::npos);
  EXPECT_NE(threads.find("tid"), std::string::npos);

  EXPECT_NE(server.HandleRequestLine("GET /debug/pprof/goroutine HTTP/1.1")
                .find("404"),
            std::string::npos);
}

TEST(MetricsHttpRoutingTest, ProfileRefusesWhileDraining) {
  MetricsHttpServer draining(TestOptions(false));
  const std::string response = draining.HandleRequestLine(
      "GET /debug/pprof/profile?seconds=1 HTTP/1.1");
  if (!ProfilerUsable()) {
    EXPECT_NE(response.find("501"), std::string::npos);
    return;
  }
  EXPECT_NE(response.find("503 Service Unavailable"), std::string::npos);
  EXPECT_NE(response.find("draining"), std::string::npos);
}

TEST(MetricsHttpRoutingTest, ProfileServesGzipAndFoldedFormats) {
  if (!ProfilerUsable()) {
    GTEST_SKIP() << "profiler compiled out or sanitizer build: the "
                    "endpoint answers 501 (covered above)";
  }
  MetricsHttpServer server(TestOptions(true));
  const std::string gz = server.HandleRequestLine(
      "GET /debug/pprof/profile?seconds=0.2&hz=199 HTTP/1.1");
  EXPECT_NE(gz.find("200 OK"), std::string::npos);
  EXPECT_NE(gz.find("application/octet-stream"), std::string::npos);
  const size_t body = gz.find("\r\n\r\n");
  ASSERT_NE(body, std::string::npos);
  ASSERT_GT(gz.size(), body + 6);
  EXPECT_EQ(static_cast<uint8_t>(gz[body + 4]), 0x1F);  // gzip magic
  EXPECT_EQ(static_cast<uint8_t>(gz[body + 5]), 0x8B);

  const std::string folded = server.HandleRequestLine(
      "GET /debug/pprof/profile?seconds=0.2&hz=199&fold=1 HTTP/1.1");
  EXPECT_NE(folded.find("200 OK"), std::string::npos);
  EXPECT_NE(folded.find("text/plain"), std::string::npos);
}

TEST(MetricsHttpSocketTest, StartFailsOnOccupiedPort) {
  MetricsHttpServer first(TestOptions(true));
  std::string error;
  ASSERT_TRUE(first.Start(&error)) << error;
  MetricsHttpOptions occupied = TestOptions(true);
  occupied.port = first.port();
  MetricsHttpServer second(occupied);
  EXPECT_FALSE(second.Start(&error));
  EXPECT_FALSE(error.empty());
  first.Stop();
}

// Raw-socket GET helper for the concurrency tests below.
std::string HttpGet(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + target + " HTTP/1.1\r\nHost: x\r\n\r\n";
  if (::send(fd, request.data(), request.size(), 0) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return "";
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

// Two profile collections racing: exactly one may run (the other gets
// 409 Conflict). This is the overlap contract the /debug/pprof/profile
// docs promise.
TEST(MetricsHttpConcurrencyTest, OverlappingProfileRequestsConflict) {
  if (!ProfilerUsable()) {
    GTEST_SKIP() << "profiler compiled out or sanitizer build; overlap "
                    "handling needs a live collection";
  }
  MetricsHttpServer server(TestOptions(true));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  std::string first;
  std::string second;
  std::thread a([&first, &server] {
    first = HttpGet(server.port(), "/debug/pprof/profile?seconds=1");
  });
  // Let the first collection actually begin before colliding with it.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  std::thread b([&second, &server] {
    second = HttpGet(server.port(), "/debug/pprof/profile?seconds=1");
  });
  a.join();
  b.join();
  server.Stop();

  EXPECT_NE(first.find("200 OK"), std::string::npos) << first;
  EXPECT_NE(second.find("409 Conflict"), std::string::npos) << second;
  EXPECT_NE(second.find("in progress"), std::string::npos) << second;
}

// A long profile in flight must not block scrapes or health probes
// (connections get a thread each), and a drain beginning mid-profile
// cuts the window short: the profile returns early with 200 + whatever
// was captured, while /healthz flips to 503.
TEST(MetricsHttpConcurrencyTest, ScrapesAnswerDuringProfileAndDrainAborts) {
  if (!ProfilerUsable()) {
    GTEST_SKIP() << "profiler compiled out or sanitizer build; the drain "
                    "abort needs a live collection";
  }
  std::atomic<bool> healthy{true};
  MetricsHttpOptions options;
  options.metrics_body = [] { return std::string("cqa_up 1\n"); };
  options.healthy = [&healthy] { return healthy.load(); };
  MetricsHttpServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  const auto start = std::chrono::steady_clock::now();
  std::string profile;
  std::thread collector([&profile, &server] {
    profile = HttpGet(server.port(), "/debug/pprof/profile?seconds=30");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // Mid-profile, the other endpoints keep answering.
  EXPECT_NE(HttpGet(server.port(), "/metrics").find("cqa_up 1"),
            std::string::npos);
  EXPECT_NE(HttpGet(server.port(), "/healthz").find("200 OK"),
            std::string::npos);

  // Graceful drain begins: healthz flips, the collection aborts early.
  healthy.store(false);
  EXPECT_NE(HttpGet(server.port(), "/healthz").find("503"),
            std::string::npos);
  EXPECT_NE(HttpGet(server.port(), "/metrics").find("cqa_up 1"),
            std::string::npos)
      << "scrapes must keep working during drain";
  collector.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  server.Stop();

  EXPECT_NE(profile.find("200 OK"), std::string::npos)
      << "partial profile still ships";
  EXPECT_LT(elapsed, 10.0) << "drain must cut the 30s window short";
}

// The connection cap answers 503 busy instead of queueing behind a
// long-running profile.
TEST(MetricsHttpConcurrencyTest, ConnectionCapAnswersBusy) {
  if (!ProfilerUsable()) {
    GTEST_SKIP() << "needs a long-running profile to hold the only slot";
  }
  MetricsHttpOptions options = TestOptions(true);
  options.max_connections = 1;
  MetricsHttpServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  std::string profile;
  std::thread collector([&profile, &server] {
    profile = HttpGet(server.port(), "/debug/pprof/profile?seconds=2");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  const std::string scrape = HttpGet(server.port(), "/metrics");
  collector.join();
  server.Stop();

  EXPECT_NE(scrape.find("503"), std::string::npos) << scrape;
  EXPECT_NE(scrape.find("busy"), std::string::npos) << scrape;
  EXPECT_NE(profile.find("200 OK"), std::string::npos) << profile;
}

}  // namespace
}  // namespace cqa::serve
