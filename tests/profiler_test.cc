// Tests for the sampling profiler (obs/profiler.h) and the profile
// region stack (obs/profile_region.h). The profiler arms real POSIX
// timers and unwinds from a SIGPROF handler, which sanitizer runtimes
// forbid — those tests condition-skip with the reason spelled out
// (Profiler::kAvailable is false there by design; the HTTP endpoint
// answers 501 the same way).

#include <gtest/gtest.h>

#include "obs/profile_region.h"

#ifndef CQABENCH_NO_OBS

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace cqa::obs {
namespace {

// Exported (extern "C" + -rdynamic via CMAKE_ENABLE_EXPORTS) so dladdr
// can name the frame; the folded output must contain this symbol.
extern "C" __attribute__((noinline)) double cqa_profiler_test_burn(
    double seconds) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(seconds));
  double acc = 0.0;
  uint64_t x = 0x9E3779B97F4A7C15ull;
  while (std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 4096; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      acc += static_cast<double>(x & 0xFF);
    }
  }
  return acc;
}

#define SKIP_WITHOUT_PROFILER()                                         \
  do {                                                                  \
    if (!Profiler::kAvailable) {                                        \
      GTEST_SKIP() << "profiler disabled under sanitizers: their "      \
                      "signal interception makes in-handler unwinding " \
                      "unsafe (Profiler::kAvailable == false)";         \
    }                                                                   \
  } while (0)

TEST(ProfileRegionTest, NestingAndOverflow) {
  EXPECT_EQ(CurrentProfileRegion(), nullptr);
  {
    ScopedProfileRegion outer("test.outer");
    EXPECT_STREQ(CurrentProfileRegion(), "test.outer");
    {
      ScopedProfileRegion inner("test.inner");
      EXPECT_STREQ(CurrentProfileRegion(), "test.inner");
    }
    EXPECT_STREQ(CurrentProfileRegion(), "test.outer");
  }
  EXPECT_EQ(CurrentProfileRegion(), nullptr);

  // Past kMaxDepth the stack keeps counting but drops names; unwinding
  // restores the deepest tracked name, never corrupts.
  {
    std::vector<ScopedProfileRegion*> deep;
    for (int i = 0; i < ProfileRegionStack::kMaxDepth; ++i) {
      deep.push_back(new ScopedProfileRegion("test.deep"));
    }
    ScopedProfileRegion overflow("test.overflow");
    EXPECT_STREQ(CurrentProfileRegion(), "test.deep");  // Name dropped.
    while (!deep.empty()) {
      delete deep.back();
      deep.pop_back();
    }
  }
  EXPECT_EQ(CurrentProfileRegion(), nullptr);
}

TEST(ProfilerTest, StartRejectsBadOptions) {
  SKIP_WITHOUT_PROFILER();
  ProfilerOptions options;
  options.hz = 0;
  std::string error;
  EXPECT_FALSE(Profiler::Instance().Start(options, &error));
  EXPECT_NE(error.find("hz"), std::string::npos);
  options.hz = 5000;
  EXPECT_FALSE(Profiler::Instance().Start(options, &error));
}

TEST(ProfilerTest, CollectsAndSymbolizesSamples) {
  SKIP_WITHOUT_PROFILER();
  Profiler& profiler = Profiler::Instance();
  ProfilerOptions options;
  options.hz = 199;  // Dense sampling keeps this test short.
  std::string error;
  ASSERT_TRUE(profiler.Start(options, &error)) << error;
  EXPECT_TRUE(profiler.running());
  EXPECT_FALSE(profiler.Start(options, &error));  // Already running.
  {
    ScopedProfileRegion region("test.burn");
    cqa_profiler_test_burn(0.4);
  }
  profiler.Stop();
  EXPECT_FALSE(profiler.running());

  const ProfilerStats stats = profiler.stats();
  EXPECT_GT(stats.samples, 10u) << "0.4s of busy CPU at 199 Hz";
  EXPECT_GT(stats.distinct_stacks, 0u);
  EXPECT_GE(stats.threads, 1u);

  const std::string folded = profiler.FoldedText();
  EXPECT_NE(folded.find("[test.burn]"), std::string::npos) << folded;
  EXPECT_NE(folded.find("cqa_profiler_test_burn"), std::string::npos)
      << folded;
  // Region tags are synthetic *root* frames: every line mentioning the
  // burn symbol must start with the region.
  EXPECT_LT(folded.find("[test.burn]"), folded.find("cqa_profiler_test_burn"));
}

TEST(ProfilerTest, RestartClearsPreviousCollection) {
  SKIP_WITHOUT_PROFILER();
  Profiler& profiler = Profiler::Instance();
  ProfilerOptions options;
  options.hz = 199;
  std::string error;
  ASSERT_TRUE(profiler.Start(options, &error)) << error;
  {
    ScopedProfileRegion region("test.first_run");
    cqa_profiler_test_burn(0.3);
  }
  profiler.Stop();
  ASSERT_NE(profiler.FoldedText().find("[test.first_run]"),
            std::string::npos);

  ASSERT_TRUE(profiler.Start(options, &error)) << error;
  profiler.Stop();
  EXPECT_EQ(profiler.FoldedText().find("[test.first_run]"),
            std::string::npos)
      << "a new Start must discard the previous trie";
}

TEST(ProfilerTest, PoolWorkersInheritSubmitterRegion) {
  SKIP_WITHOUT_PROFILER();
  ThreadPool pool(2);
  Profiler& profiler = Profiler::Instance();
  ProfilerOptions options;
  options.hz = 199;
  std::string error;
  ASSERT_TRUE(profiler.Start(options, &error)) << error;
  {
    ScopedProfileRegion region("test.pool_job");
    pool.Run(8, [](size_t) { cqa_profiler_test_burn(0.1); });
  }
  profiler.Stop();
  const std::string folded = profiler.FoldedText();
  EXPECT_NE(folded.find("[test.pool_job]"), std::string::npos)
      << "worker samples must carry the submitting caller's region:\n"
      << folded;
}

// --- pprof wire-format checks: a minimal protobuf scanner. -----------------

struct PbCursor {
  const uint8_t* p;
  const uint8_t* end;
  bool ok = true;
};

uint64_t ReadVarint(PbCursor* c) {
  uint64_t v = 0;
  int shift = 0;
  while (c->p < c->end) {
    const uint8_t byte = *c->p++;
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63) break;
  }
  c->ok = false;
  return 0;
}

struct DecodedProfile {
  std::vector<std::string> strings;
  uint64_t total_sample_count = 0;
  uint64_t total_cpu_nanos = 0;
  uint64_t num_samples = 0;
  uint64_t num_locations = 0;
  uint64_t num_functions = 0;
  uint64_t period = 0;
};

DecodedProfile DecodeProfile(const std::string& bytes) {
  DecodedProfile out;
  PbCursor c{reinterpret_cast<const uint8_t*>(bytes.data()),
             reinterpret_cast<const uint8_t*>(bytes.data()) + bytes.size()};
  while (c.ok && c.p < c.end) {
    const uint64_t tag = ReadVarint(&c);
    const int field = static_cast<int>(tag >> 3);
    const int wire = static_cast<int>(tag & 7);
    if (wire == 0) {
      const uint64_t v = ReadVarint(&c);
      if (field == 12) out.period = v;
    } else if (wire == 2) {
      const uint64_t len = ReadVarint(&c);
      if (!c.ok || c.p + len > c.end) {
        out.strings.clear();
        return out;
      }
      const uint8_t* sub_end = c.p + len;
      if (field == 6) {
        out.strings.emplace_back(reinterpret_cast<const char*>(c.p), len);
      } else if (field == 2) {
        ++out.num_samples;
        PbCursor s{c.p, sub_end};
        while (s.ok && s.p < s.end) {
          const uint64_t stag = ReadVarint(&s);
          const int sfield = static_cast<int>(stag >> 3);
          const int swire = static_cast<int>(stag & 7);
          if (swire == 2) {
            const uint64_t slen = ReadVarint(&s);
            if (!s.ok || s.p + slen > s.end) break;
            if (sfield == 2) {  // Packed values [count, nanos].
              PbCursor v{s.p, s.p + slen};
              out.total_sample_count += ReadVarint(&v);
              out.total_cpu_nanos += ReadVarint(&v);
            }
            s.p += slen;
          } else if (swire == 0) {
            ReadVarint(&s);
          } else {
            break;
          }
        }
      } else if (field == 4) {
        ++out.num_locations;
      } else if (field == 5) {
        ++out.num_functions;
      }
      c.p = sub_end;
    } else {
      break;  // No other wire types are emitted.
    }
  }
  return out;
}

/// Unpacks the stored-deflate gzip container the profiler emits (header
/// + stored blocks + crc/isize trailer); empty on malformed input.
std::string GunzipStored(const std::string& gz) {
  std::string out;
  if (gz.size() < 18 || static_cast<uint8_t>(gz[0]) != 0x1F ||
      static_cast<uint8_t>(gz[1]) != 0x8B ||
      static_cast<uint8_t>(gz[2]) != 0x08) {
    return out;
  }
  size_t pos = 10;
  for (;;) {
    if (pos >= gz.size()) return std::string();
    const uint8_t block = static_cast<uint8_t>(gz[pos++]);
    if (((block >> 1) & 0x3) != 0) return std::string();  // Stored only.
    if (pos + 4 > gz.size()) return std::string();
    const size_t len = static_cast<uint8_t>(gz[pos]) |
                       (static_cast<uint8_t>(gz[pos + 1]) << 8);
    const size_t nlen = static_cast<uint8_t>(gz[pos + 2]) |
                        (static_cast<uint8_t>(gz[pos + 3]) << 8);
    if ((len ^ nlen) != 0xFFFF) return std::string();
    pos += 4;
    if (pos + len > gz.size()) return std::string();
    out.append(gz, pos, len);
    pos += len;
    if (block & 1) break;
  }
  // Trailer: CRC32 + ISIZE; check the size field round-trips.
  if (pos + 8 != gz.size()) return std::string();
  const uint32_t isize = static_cast<uint8_t>(gz[pos + 4]) |
                         (static_cast<uint8_t>(gz[pos + 5]) << 8) |
                         (static_cast<uint8_t>(gz[pos + 6]) << 16) |
                         (static_cast<uint32_t>(
                              static_cast<uint8_t>(gz[pos + 7]))
                          << 24);
  if (isize != (out.size() & 0xFFFFFFFFull)) return std::string();
  return out;
}

TEST(ProfilerTest, PprofProfileDecodes) {
  SKIP_WITHOUT_PROFILER();
  Profiler& profiler = Profiler::Instance();
  ProfilerOptions options;
  options.hz = 199;
  std::string error;
  ASSERT_TRUE(profiler.Start(options, &error)) << error;
  {
    ScopedProfileRegion region("test.pprof");
    cqa_profiler_test_burn(0.3);
  }
  profiler.Stop();

  const std::string proto = profiler.PprofProfile();
  ASSERT_FALSE(proto.empty());
  const DecodedProfile decoded = DecodeProfile(proto);
  ASSERT_FALSE(decoded.strings.empty());
  EXPECT_EQ(decoded.strings[0], "");  // Mandatory empty first entry.
  auto has_string = [&decoded](const std::string& s) {
    for (const std::string& t : decoded.strings) {
      if (t == s) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_string("samples"));
  EXPECT_TRUE(has_string("cpu"));
  EXPECT_TRUE(has_string("nanoseconds"));
  EXPECT_TRUE(has_string("[test.pprof]"));
  EXPECT_TRUE(has_string("region"));
  EXPECT_TRUE(has_string("cqa_profiler_test_burn"));

  const ProfilerStats stats = profiler.stats();
  EXPECT_EQ(decoded.total_sample_count, stats.samples);
  EXPECT_EQ(decoded.period, 1000000000ull / 199);
  EXPECT_EQ(decoded.total_cpu_nanos, stats.samples * decoded.period);
  EXPECT_GT(decoded.num_samples, 0u);
  EXPECT_GT(decoded.num_locations, 0u);
  EXPECT_GT(decoded.num_functions, 0u);

  // The gzip wrapper must decode back to the identical proto bytes.
  const std::string unzipped = GunzipStored(profiler.PprofGzipped());
  EXPECT_EQ(unzipped, proto);
}

TEST(ProfilerTest, CollectForRejectsConcurrentCollections) {
  SKIP_WITHOUT_PROFILER();
  Profiler& profiler = Profiler::Instance();
  ProfilerOptions options;
  options.hz = 99;
  std::thread collector([&profiler, options] {
    std::string error;
    const auto result = profiler.CollectFor(
        0.8, options, [] { return true; }, &error);
    EXPECT_EQ(result, Profiler::CollectResult::kOk) << error;
  });
  // Give the first collection time to begin, then collide with it.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  std::string error;
  const auto result = profiler.CollectFor(
      0.1, options, [] { return true; }, &error);
  EXPECT_EQ(result, Profiler::CollectResult::kBusy);
  EXPECT_NE(error.find("in progress"), std::string::npos);
  collector.join();
}

TEST(ProfilerTest, CollectForAbortsWhenKeepGoingTurnsFalse) {
  SKIP_WITHOUT_PROFILER();
  Profiler& profiler = Profiler::Instance();
  ProfilerOptions options;
  options.hz = 99;
  std::string error;
  const auto start = std::chrono::steady_clock::now();
  const auto result = profiler.CollectFor(
      30.0, options,
      [&start] {
        return std::chrono::steady_clock::now() - start <
               std::chrono::milliseconds(200);
      },
      &error);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(result, Profiler::CollectResult::kOk) << error;
  EXPECT_LT(elapsed, 5.0) << "keep_going=false must cut the window short";
}

TEST(ProfilerTest, PublishesRegistryMetrics) {
  SKIP_WITHOUT_PROFILER();
  Registry& registry = Registry::Instance();
  const uint64_t collections_before =
      registry.CounterValue("obs.profile_collections");
  const uint64_t samples_before = registry.CounterValue("obs.profile_samples");
  Profiler& profiler = Profiler::Instance();
  ProfilerOptions options;
  options.hz = 199;
  std::string error;
  ASSERT_TRUE(profiler.Start(options, &error)) << error;
  EXPECT_EQ(registry.GaugeValue("obs.profile_running"), 1);
  cqa_profiler_test_burn(0.3);
  profiler.Stop();
  EXPECT_EQ(registry.GaugeValue("obs.profile_running"), 0);
  EXPECT_EQ(registry.CounterValue("obs.profile_collections"),
            collections_before + 1);
  EXPECT_GT(registry.CounterValue("obs.profile_samples"), samples_before);
}

// The <3% acceptance budget is demonstrated with bench binaries in
// EXPERIMENTS.md; a unit test on shared CI hardware needs generous
// headroom to stay deterministic, so this guards against gross
// regressions (a broken handler looping, a lock on the sample path),
// not the fine budget.
TEST(ProfilerTest, OverheadStaysSmallAt99Hz) {
  SKIP_WITHOUT_PROFILER();
#ifndef NDEBUG
  GTEST_SKIP() << "overhead is only meaningful in optimized builds";
#else
  const auto measure = [] {
    const auto start = std::chrono::steady_clock::now();
    cqa_profiler_test_burn(0.25);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  measure();  // Warm-up.
  const double baseline = std::min(measure(), measure());
  Profiler& profiler = Profiler::Instance();
  ProfilerOptions options;
  options.hz = 99;
  std::string error;
  ASSERT_TRUE(profiler.Start(options, &error)) << error;
  const double profiled = std::min(measure(), measure());
  profiler.Stop();
  EXPECT_LT(profiled, baseline * 1.5)
      << "99 Hz sampling should be far below 50% overhead (budget is "
         "<3%; the slack absorbs CI noise)";
#endif
}

}  // namespace
}  // namespace cqa::obs

#else  // CQABENCH_NO_OBS

namespace cqa::obs {
namespace {

// Under CQABENCH_NO_OBS the profiler has no symbols at all; only the
// header-only region stubs remain, and they must be inert.
TEST(ProfileRegionTest, NoObsStubIsInert) {
  EXPECT_EQ(CurrentProfileRegion(), nullptr);
  ScopedProfileRegion region("test.ignored");
  EXPECT_EQ(CurrentProfileRegion(), nullptr);
}

}  // namespace
}  // namespace cqa::obs

#endif  // CQABENCH_NO_OBS
