#include "storage/segment.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"

namespace cqa {
namespace {

TEST(SegmentTest, IntRoundTripPlain) {
  // All-distinct ints: 2*distinct > n, so the segment must stay plain.
  std::vector<int64_t> values = {5, -3, 9, 0, 42};
  Segment s = Segment::SealInts(std::vector<int64_t>(values));
  EXPECT_EQ(s.encoding(), SegmentEncoding::kPlain);
  EXPECT_EQ(s.type(), ValueType::kInt);
  ASSERT_EQ(s.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(s.GetValue(i), Value(values[i]));
    EXPECT_TRUE(s.ValueEquals(i, Value(values[i])));
    EXPECT_FALSE(s.ValueEquals(i, Value(values[i] + 1)));
    EXPECT_FALSE(s.ValueEquals(i, Value("5")));
  }
  EXPECT_EQ(s.dict_size(), 0u);
}

TEST(SegmentTest, IntRoundTripDictionary) {
  // Two distinct values over eight rows: 2*2 <= 8 — dictionary-encoded.
  std::vector<int64_t> values = {7, 7, 1, 7, 1, 1, 7, 7};
  Segment s = Segment::SealInts(std::vector<int64_t>(values));
  EXPECT_EQ(s.encoding(), SegmentEncoding::kDictionary);
  EXPECT_EQ(s.dict_size(), 2u);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(s.GetValue(i), Value(values[i]));
    EXPECT_TRUE(s.ValueEquals(i, Value(values[i])));
  }
  // The dictionary is sorted: code order mirrors value order.
  ColumnRun run = s.Run(0);
  ASSERT_EQ(run.dict_size, 2u);
  EXPECT_EQ(run.int_dict[0], 1);
  EXPECT_EQ(run.int_dict[1], 7);
  EXPECT_EQ(s.FindCode(Value(int64_t{1})), 0u);
  EXPECT_EQ(s.FindCode(Value(int64_t{7})), 1u);
  EXPECT_EQ(s.FindCode(Value(int64_t{3})), Segment::kNoCode);
}

TEST(SegmentTest, IntBoundaryStaysPlain) {
  // 2*distinct == n dictionary-encodes; one distinct more stays plain.
  std::vector<int64_t> exactly_half = {1, 1, 2, 2};
  EXPECT_EQ(Segment::SealInts(std::move(exactly_half)).encoding(),
            SegmentEncoding::kDictionary);
  std::vector<int64_t> over_half = {1, 1, 2, 3};
  EXPECT_EQ(Segment::SealInts(std::move(over_half)).encoding(),
            SegmentEncoding::kPlain);
}

TEST(SegmentTest, DoubleRoundTripAlwaysPlain) {
  std::vector<double> values = {0.5, 0.5, 0.5, -1.25};
  Segment s = Segment::SealDoubles(std::vector<double>(values));
  EXPECT_EQ(s.encoding(), SegmentEncoding::kPlain);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(s.GetValue(i), Value(values[i]));
    EXPECT_TRUE(s.ValueEquals(i, Value(values[i])));
  }
}

TEST(SegmentTest, StringRoundTripDictionary) {
  // Any repeated string triggers dictionary encoding.
  std::vector<std::string> values = {"BUILDING", "AUTO", "BUILDING", "MAIL"};
  Segment s = Segment::SealStrings(std::vector<std::string>(values));
  EXPECT_EQ(s.encoding(), SegmentEncoding::kDictionary);
  EXPECT_EQ(s.dict_size(), 3u);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(s.GetValue(i), Value(values[i]));
    EXPECT_TRUE(s.ValueEquals(i, Value(values[i])));
  }
  ColumnRun run = s.Run(4);
  EXPECT_EQ(run.row0, 4u);
  ASSERT_EQ(run.dict_size, 3u);
  EXPECT_EQ(run.string_dict[0], "AUTO");
  EXPECT_EQ(run.string_dict[1], "BUILDING");
  EXPECT_EQ(run.string_dict[2], "MAIL");
  EXPECT_EQ(s.FindCode(Value("MAIL")), 2u);
  EXPECT_EQ(s.FindCode(Value("TRUCK")), Segment::kNoCode);
}

TEST(SegmentTest, AllDistinctStringsStayPlain) {
  // A dictionary over all-distinct strings would add the code array on
  // top of the same string payload — kept plain by design.
  std::vector<std::string> values = {"a", "b", "c"};
  Segment s = Segment::SealStrings(std::move(values));
  EXPECT_EQ(s.encoding(), SegmentEncoding::kPlain);
  EXPECT_EQ(s.dict_size(), 0u);
  EXPECT_EQ(s.FindCode(Value("a")), Segment::kNoCode);
}

TEST(SegmentTest, SingleValueColumn) {
  std::vector<std::string> values(100, "only");
  Segment s = Segment::SealStrings(std::move(values));
  EXPECT_EQ(s.encoding(), SegmentEncoding::kDictionary);
  EXPECT_EQ(s.dict_size(), 1u);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(s.ValueEquals(i, Value("only")));
  }
}

TEST(SegmentTest, EmptySegments) {
  EXPECT_EQ(Segment::SealInts({}).size(), 0u);
  EXPECT_EQ(Segment::SealInts({}).encoding(), SegmentEncoding::kPlain);
  EXPECT_EQ(Segment::SealStrings({}).size(), 0u);
  EXPECT_EQ(Segment::SealStrings({}).encoding(), SegmentEncoding::kPlain);
  EXPECT_EQ(Segment::SealDoubles({}).size(), 0u);
}

TEST(SegmentTest, RunValueAtMatchesGetValue) {
  Rng rng(20240807);
  std::vector<int64_t> ints;
  std::vector<std::string> strings;
  for (size_t i = 0; i < 500; ++i) {
    ints.push_back(rng.UniformInt(0, 9));  // Low cardinality: dictionary.
    strings.push_back("s" + std::to_string(rng.UniformInt(0, 999)));
  }
  Segment si = Segment::SealInts(std::vector<int64_t>(ints));
  Segment ss = Segment::SealStrings(std::vector<std::string>(strings));
  ColumnRun ri = si.Run(17);
  ColumnRun rs = ss.Run(17);
  ASSERT_EQ(ri.length, 500u);
  ASSERT_EQ(rs.length, 500u);
  for (size_t i = 0; i < 500; ++i) {
    EXPECT_EQ(ri.ValueAt(i), Value(ints[i]));
    EXPECT_EQ(rs.ValueAt(i), Value(strings[i]));
  }
}

TEST(SegmentTest, MemoryBytesShrinksUnderDictionary) {
  // 4096 rows of 16 distinct ints: codes (4B) + dict beats plain (8B).
  std::vector<int64_t> values;
  for (size_t i = 0; i < 4096; ++i) {
    values.push_back(static_cast<int64_t>(i % 16));
  }
  Segment dict = Segment::SealInts(std::vector<int64_t>(values));
  ASSERT_EQ(dict.encoding(), SegmentEncoding::kDictionary);
  EXPECT_LT(dict.MemoryBytes(), 4096 * sizeof(int64_t));
}

}  // namespace
}  // namespace cqa
