#include "cqa/rewriting.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "cqa/exact.h"
#include "gen/noise.h"
#include "gen/tpch.h"
#include "query/parser.h"
#include "test_util.h"

namespace cqa {
namespace {

using testing::EmployeeFixture;

TEST(RewritingSqlTest, ViewUsesWindowFunctions) {
  EmployeeFixture fx;
  std::string sql = RelationViewSql(fx.schema->relation(0), 7);
  EXPECT_NE(sql.find("CREATE VIEW q_employee"), std::string::npos);
  EXPECT_NE(sql.find("7 AS rid"), std::string::npos);
  EXPECT_NE(sql.find("dense_rank() OVER (ORDER BY id) AS bid"),
            std::string::npos);
  EXPECT_NE(sql.find(
                "row_number() OVER (PARTITION BY id ORDER BY name, dept) "
                "AS tid"),
            std::string::npos);
  EXPECT_NE(sql.find("count(*) OVER (PARTITION BY id) AS kcnt"),
            std::string::npos);
  EXPECT_NE(sql.find("FROM employee;"), std::string::npos);
}

TEST(RewritingSqlTest, KeylessRelationPartitionsByAllAttributes) {
  Schema schema;
  schema.AddRelation(RelationSchema(
      "log", {{"a", ValueType::kInt}, {"b", ValueType::kInt}}));
  std::string sql = RelationViewSql(schema.relation(0), 0);
  EXPECT_NE(sql.find("PARTITION BY a, b"), std::string::npos);
}

TEST(RewritingSqlTest, QueryRewriteHasJoinsConstantsAndOrder) {
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(
      *fx.schema, "Q(D) :- employee(1, N1, D), employee(2, N2, D).");
  std::string sql = RewritingSql(*fx.schema, q);
  // Answer column, annotations per atom, aliases, conditions, order.
  EXPECT_NE(sql.find("SELECT r1.dept"), std::string::npos);
  EXPECT_NE(sql.find("r1.rid, r1.bid, r1.tid, r1.kcnt"), std::string::npos);
  EXPECT_NE(sql.find("r2.rid, r2.bid, r2.tid, r2.kcnt"), std::string::npos);
  EXPECT_NE(sql.find("FROM q_employee AS r1, q_employee AS r2"),
            std::string::npos);
  EXPECT_NE(sql.find("r1.id = 1"), std::string::npos);
  EXPECT_NE(sql.find("r2.id = 2"), std::string::npos);
  EXPECT_NE(sql.find("r2.dept = r1.dept"), std::string::npos);
  EXPECT_NE(sql.find("ORDER BY 1"), std::string::npos);
}

TEST(RewritingSqlTest, StringConstantsAreQuoted) {
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(*fx.schema,
                                   "Q() :- employee(I, N, 'IT').");
  std::string sql = RewritingSql(*fx.schema, q);
  EXPECT_NE(sql.find("r1.dept = 'IT'"), std::string::npos);
}

TEST(ExecuteRewritingTest, OneRowPerHomomorphismSorted) {
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(*fx.schema, "Q(N) :- employee(I, N, D).");
  BlockIndex index = BlockIndex::Build(*fx.db);
  std::vector<QrewRow> rows = ExecuteRewriting(*fx.db, q, index);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end(),
                             [](const QrewRow& a, const QrewRow& b) {
                               return a.answer < b.answer;
                             }));
  for (const QrewRow& row : rows) {
    ASSERT_EQ(row.atoms.size(), 1u);
    EXPECT_EQ(row.atoms[0].rid, 0u);
    EXPECT_EQ(row.atoms[0].kcnt, 2u);  // Every block has two facts.
  }
}

/// Equivalence of the two preprocessing implementations on a battery of
/// queries over the Example 1.1 instance.
class RewritingEquivalenceTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(RewritingEquivalenceTest, MatchesBuildSynopses) {
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(*fx.schema, GetParam());
  PreprocessResult direct = BuildSynopses(*fx.db, q);
  PreprocessResult via_sql = BuildSynopsesViaRewriting(*fx.db, q);

  EXPECT_EQ(direct.stats().num_homomorphisms,
            via_sql.stats().num_homomorphisms);
  EXPECT_EQ(direct.stats().num_images, via_sql.stats().num_images);
  EXPECT_EQ(direct.stats().num_distinct_images,
            via_sql.stats().num_distinct_images);
  ASSERT_EQ(direct.NumAnswers(), via_sql.NumAnswers());

  std::map<Tuple, const Synopsis*> by_answer;
  for (const AnswerSynopsis& as : via_sql.answers()) {
    by_answer[as.answer] = &as.synopsis;
  }
  for (const AnswerSynopsis& as : direct.answers()) {
    auto it = by_answer.find(as.answer);
    ASSERT_NE(it, by_answer.end()) << TupleToString(as.answer);
    const Synopsis& a = as.synopsis;
    const Synopsis& b = *it->second;
    EXPECT_EQ(a.NumImages(), b.NumImages());
    EXPECT_EQ(a.NumBlocks(), b.NumBlocks());
    // The encoded ratios must agree exactly.
    EXPECT_DOUBLE_EQ(*ExactRatioByEnumeration(a),
                     *ExactRatioByEnumeration(b));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Queries, RewritingEquivalenceTest,
    ::testing::Values(
        "Q(N) :- employee(I, N, D).",
        "Q() :- employee(1, N1, D), employee(2, N2, D).",
        "Q(D) :- employee(1, N1, D), employee(2, N2, D).",
        "Q() :- employee(I, N, 'IT').",
        "Q(I, D) :- employee(I, N, D).",
        "Q() :- employee(I, N, D), employee(I, N, D)."));

TEST(StreamingTest, ForEachSynopsisVisitsAnswersInOrder) {
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(*fx.schema, "Q(N) :- employee(I, N, D).");
  PreprocessResult batch = BuildSynopses(*fx.db, q);
  std::vector<Tuple> streamed_answers;
  std::vector<double> streamed_ratios;
  ForEachSynopsis(*fx.db, q, [&](const Tuple& answer, const Synopsis& s) {
    streamed_answers.push_back(answer);
    streamed_ratios.push_back(*ExactRatioByEnumeration(s));
    return true;
  });
  ASSERT_EQ(streamed_answers.size(), batch.NumAnswers());
  for (size_t i = 1; i < streamed_answers.size(); ++i) {
    EXPECT_LT(streamed_answers[i - 1], streamed_answers[i]);
  }
  // Same ratios as the batch path, answer by answer.
  std::map<Tuple, double> batch_ratios;
  for (const AnswerSynopsis& as : batch.answers()) {
    batch_ratios[as.answer] = *ExactRatioByEnumeration(as.synopsis);
  }
  for (size_t i = 0; i < streamed_answers.size(); ++i) {
    EXPECT_DOUBLE_EQ(streamed_ratios[i],
                     batch_ratios.at(streamed_answers[i]));
  }
}

TEST(StreamingTest, CallbackCanStopEarly) {
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(*fx.schema, "Q(N) :- employee(I, N, D).");
  size_t visits = 0;
  ForEachSynopsis(*fx.db, q, [&](const Tuple&, const Synopsis&) {
    ++visits;
    return false;
  });
  EXPECT_EQ(visits, 1u);
}

TEST(StreamingTest, SkipsAnswersWithOnlyInconsistentImages) {
  EmployeeFixture fx;
  ConjunctiveQuery q = MustParseCq(
      *fx.schema, "Q() :- employee(I, 'Alice', D1), employee(I, 'Tim', D2).");
  size_t visits = 0;
  ForEachSynopsis(*fx.db, q, [&](const Tuple&, const Synopsis&) {
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 0u);
}

TEST(RewritingEquivalenceTest, MatchesOnNoisyTpch) {
  TpchOptions tpch;
  tpch.scale_factor = 0.0004;
  Dataset d = GenerateTpch(tpch);
  ConjunctiveQuery q = MustParseCq(
      *d.schema,
      "Q(OP) :- orders(OK, CK, OS, TP, OD, OP, CL, SP, OC),"
      " lineitem(OK, PK, SK, LN, QT, EP, DI, TX, 'R', LS, SD, CD, RD, SI,"
      " SM, CM).");
  Rng rng(3);
  NoiseOptions noise;
  noise.p = 0.6;
  AddQueryAwareNoise(d.db.get(), q, noise, rng);

  PreprocessResult direct = BuildSynopses(*d.db, q);
  PreprocessResult via_sql = BuildSynopsesViaRewriting(*d.db, q);
  ASSERT_EQ(direct.NumAnswers(), via_sql.NumAnswers());
  EXPECT_EQ(direct.stats().num_images, via_sql.stats().num_images);
  EXPECT_EQ(direct.stats().num_distinct_images,
            via_sql.stats().num_distinct_images);
  EXPECT_DOUBLE_EQ(direct.Balance(), via_sql.Balance());
}

}  // namespace
}  // namespace cqa
