#include "gen/tpcds.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "query/evaluator.h"
#include "query/parser.h"

namespace cqa {
namespace {

Dataset SmallTpcds(uint64_t seed = 1) {
  TpcdsOptions options;
  options.scale_factor = 0.001;
  options.seed = seed;
  return GenerateTpcds(options);
}

TEST(TpcdsTest, SchemaHasSnowflakeCore) {
  Schema schema = MakeTpcdsSchema();
  EXPECT_EQ(schema.NumRelations(), 11u);
  for (const char* name :
       {"date_dim", "item", "customer", "customer_address", "store",
        "warehouse", "promotion", "store_sales", "catalog_sales",
        "web_sales", "inventory"}) {
    EXPECT_TRUE(schema.FindRelation(name).has_value()) << name;
  }
}

TEST(TpcdsTest, CompositeKeysMatchSpec) {
  Schema schema = MakeTpcdsSchema();
  EXPECT_EQ(schema.relation(schema.RelationId("store_sales")).key_positions(),
            (std::vector<size_t>{1, 2}));
  EXPECT_EQ(schema.relation(schema.RelationId("inventory")).key_positions(),
            (std::vector<size_t>{0, 1, 2}));
}

TEST(TpcdsTest, GeneratedInstanceIsConsistent) {
  Dataset d = SmallTpcds();
  EXPECT_TRUE(d.db->SatisfiesKeys());
}

TEST(TpcdsTest, ForeignKeysAreValid) {
  Dataset d = SmallTpcds();
  const Database& db = *d.db;
  for (const ForeignKey& fk : d.foreign_keys) {
    std::unordered_set<Value, ValueHash> targets;
    const Relation& target = db.relation(fk.target_rel);
    for (size_t row = 0; row < target.size(); ++row) {
      targets.insert(target.row(row)[fk.target_attr]);
    }
    const Relation& src = db.relation(fk.rel);
    for (size_t row = 0; row < src.size(); ++row) {
      ASSERT_TRUE(targets.count(src.row(row)[fk.attr]) > 0)
          << src.schema().name() << " attr " << fk.attr;
    }
  }
}

TEST(TpcdsTest, DateDimCoversFiveYears) {
  Dataset d = SmallTpcds();
  const Relation& dates = d.db->relation("date_dim");
  EXPECT_EQ(dates.size(), 5u * 365u);
  EXPECT_EQ(dates.row(0)[2].AsInt(), 1998);
  EXPECT_EQ(dates.row(dates.size() - 1)[2].AsInt(), 2002);
}

TEST(TpcdsTest, SnowflakeJoinIsNonEmpty) {
  Dataset d = SmallTpcds();
  CqEvaluator eval(d.db.get());
  ConjunctiveQuery q = MustParseCq(
      *d.schema,
      "Q(Y) :- store_sales(D, I, TN, C, S, P, QT, PR),"
      " date_dim(D, DT, Y, MO, DM), item(I, IID, BR, CA, MID, IP).");
  EXPECT_TRUE(eval.HasAnswer(q));
}

TEST(TpcdsTest, DeterministicForSeed) {
  Dataset a = SmallTpcds(3);
  Dataset b = SmallTpcds(3);
  EXPECT_EQ(a.db->NumFacts(), b.db->NumFacts());
  EXPECT_EQ(a.db->relation("store_sales").row(5),
            b.db->relation("store_sales").row(5));
}

TEST(TpcdsTest, ScalesWithScaleFactor) {
  TpcdsOptions small;
  small.scale_factor = 0.0005;
  TpcdsOptions bigger;
  bigger.scale_factor = 0.002;
  Dataset a = GenerateTpcds(small);
  Dataset b = GenerateTpcds(bigger);
  EXPECT_LT(a.db->relation("store_sales").size(),
            b.db->relation("store_sales").size());
}

}  // namespace
}  // namespace cqa
