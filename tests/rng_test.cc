#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace cqa {
namespace {

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(1);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformIndexCoversRange) {
  Rng rng(2);
  std::set<size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformIndex(4));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, UniformRealIsInHalfOpenUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformReal();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(4);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-1.0));
  EXPECT_TRUE(rng.Bernoulli(2.0));
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool differ = false;
  for (int i = 0; i < 10 && !differ; ++i) {
    differ = a.UniformInt(0, 1 << 30) != b.UniformInt(0, 1 << 30);
  }
  EXPECT_TRUE(differ);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(6);
  std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, WeightedIndexSingleton) {
  Rng rng(7);
  EXPECT_EQ(rng.WeightedIndex({2.5}), 0u);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(8);
  for (size_t k = 0; k <= 10; ++k) {
    std::vector<size_t> sample = rng.SampleWithoutReplacement(10, k);
    EXPECT_EQ(sample.size(), k);
    std::set<size_t> distinct(sample.begin(), sample.end());
    EXPECT_EQ(distinct.size(), k);
    for (size_t v : sample) EXPECT_LT(v, 10u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullRangeIsPermutation) {
  Rng rng(9);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(6, 6);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<size_t>{0, 1, 2, 3, 4, 5}));
}

TEST(RngTest, SampleWithoutReplacementIsUniformish) {
  // Every element should appear with frequency ~k/n.
  Rng rng(10);
  std::vector<int> counts(8, 0);
  const int trials = 8000;
  for (int t = 0; t < trials; ++t) {
    for (size_t v : rng.SampleWithoutReplacement(8, 3)) ++counts[v];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 3.0 / 8.0, 0.04);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5};
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(SplitMix64Test, MatchesReferenceVector) {
  // First outputs of the reference splitmix64 stream seeded with 0
  // (Steele–Lea–Flood / Vigna): the n-th output is SplitMix64 applied to
  // the state n·γ, γ being the 64-bit golden-ratio increment.
  constexpr uint64_t kGamma = 0x9E3779B97F4A7C15ULL;
  EXPECT_EQ(SplitMix64(0), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(SplitMix64(kGamma), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(SplitMix64(2 * kGamma), 0x06C45D188009454FULL);
}

TEST(RngTest, ForkSeedIsDeterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(a.ForkSeed(), b.ForkSeed());
  }
}

TEST(RngTest, ForkedWorkerStreamsDoNotCollide) {
  // Two workers seeded from consecutive forks must produce disjoint
  // streams: any shared value in the first 1k draws would mean the
  // parallel main loop averages correlated (non-i.i.d.) samples.
  Rng parent(20210620);
  Rng worker0(parent.ForkSeed());
  Rng worker1(parent.ForkSeed());
  std::set<uint64_t> draws0;
  for (int i = 0; i < 1000; ++i) draws0.insert(worker0.engine()());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(draws0.count(worker1.engine()()), 0u) << "collision at " << i;
  }
}

}  // namespace
}  // namespace cqa
