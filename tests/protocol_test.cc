// Wire-protocol unit tests: the serve/json.h parser/serializer and the
// serve/protocol.h framing + request/response codecs, with the edge
// cases a server exposed to arbitrary bytes must survive — truncated
// frames, oversize frames, zero-length frames, wrong protocol versions,
// and garbage JSON.

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "serve/json.h"
#include "serve/protocol.h"

namespace cqa::serve {
namespace {

// ---------------------------------------------------------------- JSON.

TEST(JsonTest, ParsesScalarsAndNesting) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(
      R"({"a": 1, "b": [true, null, "x"], "c": {"d": -2.5e2}})", &v,
      &error))
      << error;
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.GetNumber("a", 0), 1.0);
  const JsonValue* b = v.Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(b->is_array());
  ASSERT_EQ(b->AsArray().size(), 3u);
  EXPECT_TRUE(b->AsArray()[0].AsBool());
  EXPECT_EQ(b->AsArray()[1].kind(), JsonValue::Kind::kNull);
  EXPECT_EQ(b->AsArray()[2].AsString(), "x");
  const JsonValue* c = v.Find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->GetNumber("d", 0), -250.0);
}

TEST(JsonTest, RejectsGarbage) {
  const char* kBad[] = {
      "",           "{",        "}",          "{\"a\":}",
      "[1,]",       "tru",      "\"unterminated",
      "{\"a\":1}x", "nan",      "1.2.3",
      "{\"a\" 1}",  "[1 2]",    "\"\\q\"",    "\"\x01\"",
  };
  for (const char* text : kBad) {
    JsonValue v;
    std::string error;
    EXPECT_FALSE(JsonValue::Parse(text, &v, &error))
        << "accepted: " << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(JsonTest, RejectsDeepNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  JsonValue v;
  std::string error;
  EXPECT_FALSE(JsonValue::Parse(deep, &v, &error));
}

TEST(JsonTest, SerializeRoundTrips) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("n", JsonValue::MakeNumber(42));
  obj.Set("f", JsonValue::MakeNumber(0.125));
  obj.Set("s", JsonValue::MakeString("a\"b\\c\n\t\x01"));
  JsonValue arr = JsonValue::MakeArray();
  arr.Append(JsonValue::MakeBool(false));
  arr.Append(JsonValue::MakeNull());
  obj.Set("a", std::move(arr));

  JsonValue back;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(obj.Serialize(), &back, &error)) << error;
  EXPECT_EQ(back.GetNumber("n", 0), 42.0);
  EXPECT_EQ(back.GetNumber("f", 0), 0.125);
  EXPECT_EQ(back.GetString("s", ""), "a\"b\\c\n\t\x01");
  ASSERT_NE(back.Find("a"), nullptr);
  EXPECT_EQ(back.Find("a")->AsArray().size(), 2u);
}

TEST(JsonTest, IntegersPrintExactly) {
  JsonValue v = JsonValue::MakeNumber(123456789012.0);
  EXPECT_EQ(v.Serialize(), "123456789012");
}

TEST(JsonTest, UnicodeEscapesDecodeToUtf8) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(R"("\u00e9\u0041")", &v, &error)) << error;
  EXPECT_EQ(v.AsString(), "\xc3\xa9"
                          "A");
}

// ------------------------------------------------------------- framing.

TEST(FramingTest, EncodesLengthPrefix) {
  std::string frame = EncodeFrame("abc");
  ASSERT_EQ(frame.size(), 7u);
  EXPECT_EQ(frame[0], '\0');
  EXPECT_EQ(frame[1], '\0');
  EXPECT_EQ(frame[2], '\0');
  EXPECT_EQ(frame[3], '\x03');
  EXPECT_EQ(frame.substr(4), "abc");
}

TEST(FramingTest, ReassemblesSplitFrames) {
  std::string frame = EncodeFrame("hello") + EncodeFrame("world");
  FrameDecoder decoder;
  std::string payload;
  std::string error;
  // Feed one byte at a time: chunk boundaries never align with frames.
  size_t frames = 0;
  for (char c : frame) {
    decoder.Append(&c, 1);
    while (decoder.Next(&payload, &error) == FrameDecoder::Status::kFrame) {
      ++frames;
      EXPECT_EQ(payload, frames == 1 ? "hello" : "world");
    }
  }
  EXPECT_EQ(frames, 2u);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FramingTest, TruncatedFrameNeedsMore) {
  std::string frame = EncodeFrame("payload");
  FrameDecoder decoder;
  decoder.Append(frame.data(), frame.size() - 1);  // Missing last byte.
  std::string payload;
  std::string error;
  EXPECT_EQ(decoder.Next(&payload, &error),
            FrameDecoder::Status::kNeedMore);
  decoder.Append(frame.data() + frame.size() - 1, 1);
  EXPECT_EQ(decoder.Next(&payload, &error), FrameDecoder::Status::kFrame);
  EXPECT_EQ(payload, "payload");
}

TEST(FramingTest, ZeroLengthFramePoisons) {
  FrameDecoder decoder;
  const char zeros[4] = {0, 0, 0, 0};
  decoder.Append(zeros, 4);
  std::string payload;
  std::string error;
  EXPECT_EQ(decoder.Next(&payload, &error), FrameDecoder::Status::kError);
  EXPECT_NE(error.find("zero-length"), std::string::npos);
  // Poisoned: even a subsequently valid frame is rejected.
  std::string good = EncodeFrame("x");
  decoder.Append(good.data(), good.size());
  EXPECT_EQ(decoder.Next(&payload, &error), FrameDecoder::Status::kError);
}

TEST(FramingTest, OversizeFramePoisons) {
  FrameDecoder decoder(16);
  std::string frame = EncodeFrame(std::string(17, 'x'));
  decoder.Append(frame.data(), frame.size());
  std::string payload;
  std::string error;
  EXPECT_EQ(decoder.Next(&payload, &error), FrameDecoder::Status::kError);
  EXPECT_NE(error.find("exceeds"), std::string::npos);
}

// ------------------------------------------------------- request codec.

TEST(RequestCodecTest, RoundTrips) {
  Request request;
  request.op = "query";
  request.id = "req-1";
  request.schema = "tpcds";
  request.data = "/data/noisy";
  request.query = "Q(N) :- item(I, N).";
  request.scheme = "Cover";
  request.epsilon = 0.05;
  request.delta = 0.1;
  request.deadline_s = 2.5;
  request.seed = 99;
  request.threads = 3;
  request.want_record = true;

  Request decoded;
  ErrorCode code = ErrorCode::kOk;
  std::string error;
  ASSERT_TRUE(Request::FromJsonPayload(request.ToJsonPayload(), &decoded,
                                       &code, &error))
      << error;
  EXPECT_EQ(decoded.op, "query");
  EXPECT_EQ(decoded.id, "req-1");
  EXPECT_EQ(decoded.schema, "tpcds");
  EXPECT_EQ(decoded.data, "/data/noisy");
  EXPECT_EQ(decoded.query, "Q(N) :- item(I, N).");
  EXPECT_EQ(decoded.scheme, "Cover");
  EXPECT_EQ(decoded.epsilon, 0.05);
  EXPECT_EQ(decoded.delta, 0.1);
  EXPECT_EQ(decoded.deadline_s, 2.5);
  EXPECT_EQ(decoded.seed, 99u);
  EXPECT_EQ(decoded.threads, 3);
  EXPECT_TRUE(decoded.want_record);
}

TEST(RequestCodecTest, RejectsGarbageJson) {
  Request decoded;
  ErrorCode code = ErrorCode::kOk;
  std::string error;
  EXPECT_FALSE(
      Request::FromJsonPayload("{not json", &decoded, &code, &error));
  EXPECT_EQ(code, ErrorCode::kBadRequest);
  EXPECT_FALSE(
      Request::FromJsonPayload("[1, 2, 3]", &decoded, &code, &error));
  EXPECT_EQ(code, ErrorCode::kBadRequest);
}

TEST(RequestCodecTest, RejectsBadVersion) {
  Request decoded;
  ErrorCode code = ErrorCode::kOk;
  std::string error;
  EXPECT_FALSE(Request::FromJsonPayload(R"({"op": "ping"})", &decoded,
                                        &code, &error));
  EXPECT_EQ(code, ErrorCode::kBadVersion);
  EXPECT_FALSE(Request::FromJsonPayload(R"({"v": 2, "op": "ping"})",
                                        &decoded, &code, &error));
  EXPECT_EQ(code, ErrorCode::kBadVersion);
}

TEST(RequestCodecTest, RejectsBadFields) {
  const char* kBad[] = {
      R"({"v": 1, "op": "delete"})",
      R"({"v": 1, "op": "query"})",  // Missing data + query.
      R"({"v": 1, "op": "query", "data": "d", "query": "q",
          "schema": "imdb"})",
      R"({"v": 1, "op": "query", "data": "d", "query": "q",
          "epsilon": -1})",
      R"({"v": 1, "op": "query", "data": "d", "query": "q",
          "delta": 1.5})",
      R"({"v": 1, "op": "query", "data": "d", "query": "q",
          "threads": 0})",
  };
  for (const char* text : kBad) {
    Request decoded;
    ErrorCode code = ErrorCode::kOk;
    std::string error;
    EXPECT_FALSE(Request::FromJsonPayload(text, &decoded, &code, &error))
        << "accepted: " << text;
    EXPECT_EQ(code, ErrorCode::kBadRequest) << text;
  }
}

// ------------------------------------------------ trace context codec.

TEST(RequestCodecTest, TraceContextRoundTrips) {
  Request request;
  request.op = "query";
  request.data = "/data/d";
  request.query = "Q(N) :- item(I, N).";
  request.trace_id = "client-trace-7";
  request.trace_parent = 123456789;

  Request decoded;
  ErrorCode code = ErrorCode::kOk;
  std::string error;
  ASSERT_TRUE(Request::FromJsonPayload(request.ToJsonPayload(), &decoded,
                                       &code, &error))
      << error;
  EXPECT_EQ(decoded.trace_id, "client-trace-7");
  EXPECT_EQ(decoded.trace_parent, 123456789u);
}

TEST(RequestCodecTest, TraceIsOptionalAndWorksOnEveryOp) {
  Request decoded;
  ErrorCode code = ErrorCode::kOk;
  std::string error;
  ASSERT_TRUE(Request::FromJsonPayload(R"({"v": 1, "op": "ping"})",
                                       &decoded, &code, &error))
      << error;
  EXPECT_TRUE(decoded.trace_id.empty());
  EXPECT_EQ(decoded.trace_parent, 0u);
  // Ping and stats carry trace context too — every op is traceable.
  ASSERT_TRUE(Request::FromJsonPayload(
      R"({"v": 1, "op": "stats", "trace": {"id": "t-1"}})", &decoded,
      &code, &error))
      << error;
  EXPECT_EQ(decoded.trace_id, "t-1");
}

TEST(RequestCodecTest, RejectsMalformedTrace) {
  const std::string kPrefix =
      R"({"v": 1, "op": "query", "data": "d", "query": "q", "trace": )";
  const std::string kBad[] = {
      "\"not an object\"}",
      "{}}",                       // Missing id.
      "{\"id\": \"\"}}",           // Empty id.
      "{\"id\": \"t\", \"parent\": -1}}",
      "{\"id\": \"" + std::string(kMaxTraceIdBytes + 1, 'x') + "\"}}",
  };
  for (const std::string& tail : kBad) {
    Request decoded;
    ErrorCode code = ErrorCode::kOk;
    std::string error;
    EXPECT_FALSE(Request::FromJsonPayload(kPrefix + tail, &decoded, &code,
                                          &error))
        << "accepted: " << tail;
    EXPECT_EQ(code, ErrorCode::kBadRequest) << tail;
  }
  // Exactly at the cap is fine.
  Request decoded;
  ErrorCode code = ErrorCode::kOk;
  std::string error;
  EXPECT_TRUE(Request::FromJsonPayload(
      kPrefix + "{\"id\": \"" + std::string(kMaxTraceIdBytes, 'x') + "\"}}",
      &decoded, &code, &error))
      << error;
  EXPECT_EQ(decoded.trace_id.size(), kMaxTraceIdBytes);
}

// ------------------------------------------------------ response codec.

TEST(ResponseCodecTest, RoundTripsSuccess) {
  Response response;
  response.id = "req-7";
  response.answers.push_back(ResponseAnswer{"(1, 'Bob')", 0.5});
  response.answers.push_back(ResponseAnswer{"(2, 'Alice')", 1.0});
  response.cache_hit = true;
  response.timed_out = false;
  response.preprocess_seconds = 0.25;
  response.scheme_seconds = 1.5;
  response.total_samples = 12345;
  response.run_record_json = R"({"scheme":"KLM"})";

  Response decoded;
  std::string error;
  ASSERT_TRUE(Response::FromJsonPayload(response.ToJsonPayload(), &decoded,
                                        &error))
      << error;
  EXPECT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.id, "req-7");
  ASSERT_EQ(decoded.answers.size(), 2u);
  EXPECT_EQ(decoded.answers[0].tuple, "(1, 'Bob')");
  EXPECT_EQ(decoded.answers[0].frequency, 0.5);
  EXPECT_EQ(decoded.answers[1].tuple, "(2, 'Alice')");
  EXPECT_TRUE(decoded.cache_hit);
  EXPECT_FALSE(decoded.timed_out);
  EXPECT_EQ(decoded.preprocess_seconds, 0.25);
  EXPECT_EQ(decoded.scheme_seconds, 1.5);
  EXPECT_EQ(decoded.total_samples, 12345u);
  EXPECT_EQ(decoded.run_record_json, R"({"scheme":"KLM"})");
}

TEST(ResponseCodecTest, RoundTripsError) {
  Response response = Response::MakeError(ErrorCode::kOverloaded,
                                          "queue full", "req-9");
  response.retry_after_s = 1.25;

  Response decoded;
  std::string error;
  ASSERT_TRUE(Response::FromJsonPayload(response.ToJsonPayload(), &decoded,
                                        &error))
      << error;
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.code, ErrorCode::kOverloaded);
  EXPECT_EQ(decoded.error, "queue full");
  EXPECT_EQ(decoded.id, "req-9");
  EXPECT_EQ(decoded.retry_after_s, 1.25);
}

TEST(ResponseCodecTest, TimingRoundTripsWhenRecorded) {
  Response response;
  response.id = "req-t";
  response.timing.recorded = true;
  response.timing.queue_wait_micros = 11;
  response.timing.cache_micros = 22;
  response.timing.preprocess_micros = 33;
  response.timing.sample_micros = 44;
  response.timing.encode_micros = 5;
  response.timing.total_micros = 120;

  Response decoded;
  std::string error;
  ASSERT_TRUE(Response::FromJsonPayload(response.ToJsonPayload(), &decoded,
                                        &error))
      << error;
  ASSERT_TRUE(decoded.timing.recorded);
  EXPECT_EQ(decoded.timing.queue_wait_micros, 11u);
  EXPECT_EQ(decoded.timing.cache_micros, 22u);
  EXPECT_EQ(decoded.timing.preprocess_micros, 33u);
  EXPECT_EQ(decoded.timing.sample_micros, 44u);
  EXPECT_EQ(decoded.timing.encode_micros, 5u);
  EXPECT_EQ(decoded.timing.total_micros, 120u);
  EXPECT_EQ(decoded.timing.PhaseSumMicros(), 11u + 22 + 33 + 44 + 5);
}

TEST(ResponseCodecTest, TimingIsAbsentWhenNotRecorded) {
  Response response;
  response.id = "req-u";
  std::string payload = response.ToJsonPayload();
  EXPECT_EQ(payload.find("\"timing\""), std::string::npos) << payload;
  Response decoded;
  std::string error;
  ASSERT_TRUE(Response::FromJsonPayload(payload, &decoded, &error)) << error;
  EXPECT_FALSE(decoded.timing.recorded);
}

TEST(ResponseCodecTest, ErrorCodeNamesCoverEveryCode) {
  for (ErrorCode code :
       {ErrorCode::kOk, ErrorCode::kBadRequest, ErrorCode::kNotFound,
        ErrorCode::kDeadlineExceeded, ErrorCode::kFrameTooLarge,
        ErrorCode::kBadVersion, ErrorCode::kInternal,
        ErrorCode::kOverloaded, ErrorCode::kDraining}) {
    EXPECT_STRNE(ErrorCodeName(code), "unknown");
  }
}

// ------------------------------------------------- Binary (v2) codec.

// A fully-populated query request for round-trip property tests.
Request FullQueryRequest() {
  Request request;
  request.op = "query";
  request.id = "req-bin-1";
  request.schema = "tpcds";
  request.data = "/data/noisy";
  request.query = "Q(N) :- item(I, N).";
  request.scheme = "Cover";
  request.epsilon = 0.05;
  request.delta = 0.1;
  request.deadline_s = 2.5;
  request.seed = 99;
  request.threads = 3;
  request.want_record = true;
  request.trace_id = "trace-bin";
  request.trace_parent = 41;
  return request;
}

// Property: decoding the binary payload must yield exactly the request
// the JSON codec yields, field for field (version differs by design:
// the codec *is* the version).
void ExpectSameRequest(const Request& bin, const Request& json) {
  EXPECT_EQ(bin.version, kProtocolVersionBinary);
  EXPECT_EQ(json.version, kProtocolVersion);
  EXPECT_EQ(bin.op, json.op);
  EXPECT_EQ(bin.id, json.id);
  EXPECT_EQ(bin.schema, json.schema);
  EXPECT_EQ(bin.data, json.data);
  EXPECT_EQ(bin.query, json.query);
  EXPECT_EQ(bin.scheme, json.scheme);
  EXPECT_EQ(bin.epsilon, json.epsilon);
  EXPECT_EQ(bin.delta, json.delta);
  EXPECT_EQ(bin.deadline_s, json.deadline_s);
  EXPECT_EQ(bin.seed, json.seed);
  EXPECT_EQ(bin.threads, json.threads);
  EXPECT_EQ(bin.want_record, json.want_record);
  EXPECT_EQ(bin.trace_id, json.trace_id);
  EXPECT_EQ(bin.trace_parent, json.trace_parent);
}

TEST(BinaryCodecTest, DetectsCodecFromFirstByte) {
  WireCodec codec = WireCodec::kBinary;
  ASSERT_TRUE(DetectCodec("{\"v\":1}", &codec));
  EXPECT_EQ(codec, WireCodec::kJson);
  ASSERT_TRUE(DetectCodec("  \n\t {\"v\":1}", &codec));
  EXPECT_EQ(codec, WireCodec::kJson);
  ASSERT_TRUE(DetectCodec(std::string("\x02\x01", 2), &codec));
  EXPECT_EQ(codec, WireCodec::kBinary);
  EXPECT_FALSE(DetectCodec("", &codec));
  EXPECT_FALSE(DetectCodec("GET / HTTP/1.1", &codec));
  EXPECT_FALSE(DetectCodec(std::string(1, '\0'), &codec));
}

TEST(BinaryCodecTest, RequestRoundTripMatchesJsonCodec) {
  const Request request = FullQueryRequest();

  Request from_binary;
  Request from_json;
  WireCodec codec = WireCodec::kJson;
  ErrorCode code = ErrorCode::kOk;
  std::string error;
  ASSERT_TRUE(Request::FromPayload(request.ToBinaryPayload(), &from_binary,
                                   &codec, &code, &error))
      << error;
  EXPECT_EQ(codec, WireCodec::kBinary);
  ASSERT_TRUE(Request::FromPayload(request.ToJsonPayload(), &from_json,
                                   &codec, &code, &error))
      << error;
  EXPECT_EQ(codec, WireCodec::kJson);
  ExpectSameRequest(from_binary, from_json);
}

TEST(BinaryCodecTest, RequestRoundTripsEveryOp) {
  for (const char* op : {"query", "stats", "ping"}) {
    Request request = FullQueryRequest();
    request.op = op;
    Request decoded;
    ErrorCode code = ErrorCode::kOk;
    std::string error;
    ASSERT_TRUE(Request::FromBinaryPayload(request.ToBinaryPayload(),
                                           &decoded, &code, &error))
        << op << ": " << error;
    EXPECT_EQ(decoded.op, op);
    EXPECT_EQ(decoded.id, request.id);
    EXPECT_EQ(decoded.trace_id, request.trace_id);
    EXPECT_EQ(decoded.trace_parent, request.trace_parent);
  }
}

TEST(BinaryCodecTest, RequestValidationMatchesJsonCodec) {
  // The binary decoder funnels through the same semantic validator as
  // the JSON decoder, so out-of-range fields are rejected identically.
  Request request = FullQueryRequest();
  request.epsilon = 1.5;
  Request decoded;
  ErrorCode code = ErrorCode::kOk;
  std::string error;
  EXPECT_FALSE(Request::FromBinaryPayload(request.ToBinaryPayload(),
                                          &decoded, &code, &error));
  EXPECT_EQ(code, ErrorCode::kBadRequest);

  request = FullQueryRequest();
  request.data.clear();
  code = ErrorCode::kOk;
  EXPECT_FALSE(Request::FromBinaryPayload(request.ToBinaryPayload(),
                                          &decoded, &code, &error));
  EXPECT_EQ(code, ErrorCode::kBadRequest);
}

TEST(BinaryCodecTest, RequestRejectsWrongKindByte) {
  // Kind 2 is a response; a request decoder must not accept it.
  Request decoded;
  ErrorCode code = ErrorCode::kOk;
  std::string error;
  EXPECT_FALSE(Request::FromBinaryPayload(std::string("\x02\x02", 2),
                                          &decoded, &code, &error));
  EXPECT_EQ(code, ErrorCode::kBadRequest);
  EXPECT_FALSE(Request::FromBinaryPayload(std::string("\x02", 1), &decoded,
                                          &code, &error));
  EXPECT_EQ(code, ErrorCode::kBadRequest);
}

TEST(BinaryCodecTest, RequestSkipsUnknownFieldsForForwardCompat) {
  std::string payload = FullQueryRequest().ToBinaryPayload();
  // Field 60 varint 7: tag = (60 << 3) | 0 = 480 → varint e0 03.
  payload.push_back(static_cast<char>(0xe0));
  payload.push_back(static_cast<char>(0x03));
  payload.push_back(static_cast<char>(0x07));
  // Field 61 length-delimited "xx": tag = (61 << 3) | 2 = 490 → ea 03.
  payload.push_back(static_cast<char>(0xea));
  payload.push_back(static_cast<char>(0x03));
  payload.push_back(static_cast<char>(0x02));
  payload += "xx";
  Request decoded;
  ErrorCode code = ErrorCode::kOk;
  std::string error;
  ASSERT_TRUE(Request::FromBinaryPayload(payload, &decoded, &code, &error))
      << error;
  EXPECT_EQ(decoded.id, "req-bin-1");
  EXPECT_EQ(decoded.query, "Q(N) :- item(I, N).");
}

TEST(BinaryCodecTest, TruncatedRequestNeverCrashesAndFailsMidField) {
  const std::string payload = FullQueryRequest().ToBinaryPayload();
  Request decoded;
  ErrorCode code = ErrorCode::kOk;
  std::string error;
  ASSERT_TRUE(
      Request::FromBinaryPayload(payload, &decoded, &code, &error));
  size_t rejected = 0;
  for (size_t n = 0; n < payload.size(); ++n) {
    Request scratch;
    code = ErrorCode::kOk;
    // A prefix cut at a field boundary may decode (the tail fields were
    // optional); a mid-field cut must fail with kBadRequest. Either
    // way: no crash, no undefined state.
    if (!Request::FromBinaryPayload(payload.substr(0, n), &scratch, &code,
                                    &error)) {
      EXPECT_EQ(code, ErrorCode::kBadRequest) << "prefix " << n;
      ++rejected;
    }
  }
  EXPECT_GT(rejected, payload.size() / 2);
}

TEST(BinaryCodecTest, GarbageAfterMagicNeverCrashes) {
  // Deterministic pseudo-random garbage bodies behind a valid header.
  uint64_t state = 0x9e3779b97f4a7c15ull;
  for (int round = 0; round < 64; ++round) {
    std::string payload("\x02\x01", 2);
    const size_t len = static_cast<size_t>(round) * 3 + 1;
    for (size_t i = 0; i < len; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      payload.push_back(static_cast<char>(state >> 33));
    }
    Request decoded;
    ErrorCode code = ErrorCode::kOk;
    std::string error;
    // Must terminate and either reject cleanly or decode to a request
    // that passed full semantic validation.
    if (Request::FromBinaryPayload(payload, &decoded, &code, &error)) {
      EXPECT_TRUE(decoded.op == "query" || decoded.op == "stats" ||
                  decoded.op == "ping");
    } else {
      EXPECT_EQ(code, ErrorCode::kBadRequest);
    }
  }
}

TEST(BinaryCodecTest, ResponseRoundTripsSuccessWithAnswersAndTiming) {
  Response response;
  response.id = "req-bin-7";
  response.answers.push_back(ResponseAnswer{"(1, 'Bob')", 0.5});
  response.answers.push_back(ResponseAnswer{"(2, 'Alice')", 1.0});
  response.answers.push_back(ResponseAnswer{"", 0.0});  // Empty tuple.
  response.cache_hit = true;
  response.timed_out = true;
  response.preprocess_seconds = 0.25;
  response.scheme_seconds = 1.5;
  response.total_samples = 1234567890123ull;
  response.run_record_json = R"({"scheme":"KLM"})";
  response.timing.recorded = true;
  response.timing.queue_wait_micros = 11;
  response.timing.cache_micros = 22;
  response.timing.preprocess_micros = 33;
  response.timing.sample_micros = 44;
  response.timing.encode_micros = 5;
  response.timing.total_micros = 120;

  Response decoded;
  std::string error;
  ASSERT_TRUE(Response::FromPayload(response.ToBinaryPayload(), &decoded,
                                    &error))
      << error;
  EXPECT_EQ(decoded.version, kProtocolVersionBinary);
  EXPECT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.id, "req-bin-7");
  ASSERT_EQ(decoded.answers.size(), 3u);
  EXPECT_EQ(decoded.answers[0].tuple, "(1, 'Bob')");
  EXPECT_EQ(decoded.answers[0].frequency, 0.5);
  EXPECT_EQ(decoded.answers[1].tuple, "(2, 'Alice')");
  EXPECT_EQ(decoded.answers[1].frequency, 1.0);
  EXPECT_EQ(decoded.answers[2].tuple, "");
  EXPECT_TRUE(decoded.cache_hit);
  EXPECT_TRUE(decoded.timed_out);
  EXPECT_EQ(decoded.preprocess_seconds, 0.25);
  EXPECT_EQ(decoded.scheme_seconds, 1.5);
  EXPECT_EQ(decoded.total_samples, 1234567890123ull);
  EXPECT_EQ(decoded.run_record_json, R"({"scheme":"KLM"})");
  ASSERT_TRUE(decoded.timing.recorded);
  EXPECT_EQ(decoded.timing.PhaseSumMicros(), 11u + 22 + 33 + 44 + 5);
  EXPECT_EQ(decoded.timing.total_micros, 120u);
}

TEST(BinaryCodecTest, ResponseRoundTripsErrorPongAndStats) {
  Response err = Response::MakeError(ErrorCode::kOverloaded, "queue full",
                                     "req-9");
  err.retry_after_s = 1.25;
  Response decoded;
  std::string error;
  ASSERT_TRUE(Response::FromBinaryPayload(err.ToBinaryPayload(), &decoded,
                                          &error))
      << error;
  EXPECT_EQ(decoded.code, ErrorCode::kOverloaded);
  EXPECT_EQ(decoded.error, "queue full");
  EXPECT_EQ(decoded.id, "req-9");
  EXPECT_EQ(decoded.retry_after_s, 1.25);

  Response pong;
  pong.id = "p";
  pong.pong = true;
  decoded = Response();
  ASSERT_TRUE(Response::FromBinaryPayload(pong.ToBinaryPayload(), &decoded,
                                          &error))
      << error;
  EXPECT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.pong);

  Response stats;
  stats.id = "s";
  stats.metrics_json = R"({"serve.requests_total":4})";
  stats.server_json = R"({"draining":false})";
  decoded = Response();
  ASSERT_TRUE(Response::FromBinaryPayload(stats.ToBinaryPayload(), &decoded,
                                          &error))
      << error;
  EXPECT_EQ(decoded.metrics_json, R"({"serve.requests_total":4})");
  EXPECT_EQ(decoded.server_json, R"({"draining":false})");
}

TEST(BinaryCodecTest, TruncatedResponseNeverCrashes) {
  Response response;
  response.id = "req-t";
  response.answers.push_back(ResponseAnswer{"(1)", 0.25});
  response.timing.recorded = true;
  response.timing.total_micros = 9;
  const std::string payload = response.ToBinaryPayload();
  for (size_t n = 0; n < payload.size(); ++n) {
    Response scratch;
    std::string error;
    // Same contract as the request decoder: terminate, no crash.
    Response::FromBinaryPayload(payload.substr(0, n), &scratch, &error);
  }
  // A corrupted packed-answers block (count says 200, bytes say one) is
  // a malformed field, not an allocation bomb.
  std::string corrupt("\x02\x02", 2);
  corrupt.push_back(static_cast<char>((10 << 3) | 2));  // kRespAnswers, len.
  corrupt.push_back(2);
  corrupt.push_back(static_cast<char>(200));  // varint 200 needs 2 bytes...
  corrupt.push_back(1);                       // ...count = 200, no payload.
  Response scratch;
  std::string error;
  EXPECT_FALSE(Response::FromBinaryPayload(corrupt, &scratch, &error));
}

}  // namespace
}  // namespace cqa::serve
