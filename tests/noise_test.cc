#include "gen/noise.h"

#include <gtest/gtest.h>

#include <set>

#include "cqa/preprocess.h"
#include "gen/tpch.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "storage/block_index.h"
#include "test_util.h"

namespace cqa {
namespace {

struct SimpleFixture {
  SimpleFixture() {
    schema.AddRelation(RelationSchema(
        "r", {{"k", ValueType::kInt}, {"v", ValueType::kInt}}, {0}));
    db = std::make_unique<Database>(&schema);
    for (int k = 0; k < 20; ++k) {
      db->Insert("r", {Value(k), Value(k % 5)});
    }
  }
  Schema schema;
  std::unique_ptr<Database> db;
};

TEST(NoiseTest, AddsConflictsOnlyOnQueryRelevantFacts) {
  SimpleFixture fx;
  // The query touches only v = 0 facts (keys 0, 5, 10, 15).
  ConjunctiveQuery q = MustParseCq(fx.schema, "Q(K) :- r(K, 0).");
  Rng rng(1);
  NoiseOptions options;
  options.p = 1.0;
  NoiseStats stats = AddQueryAwareNoise(fx.db.get(), q, options, rng);
  EXPECT_EQ(stats.relevant_facts, 4u);
  EXPECT_EQ(stats.selected_facts, 4u);
  EXPECT_GT(stats.facts_added, 0u);

  BlockIndex index = BlockIndex::Build(*fx.db);
  const RelationBlockIndex& rbi = index.relation(0);
  // Only blocks with key % 5 == 0 may be non-singleton.
  for (size_t bid = 0; bid < rbi.NumBlocks(); ++bid) {
    if (rbi.block(bid).size() > 1) {
      int64_t key = fx.db->relation("r").row(rbi.block(bid)[0])[0].AsInt();
      EXPECT_EQ(key % 5, 0) << "unexpected conflict on key " << key;
    }
  }
}

TEST(NoiseTest, BlockSizesWithinBounds) {
  SimpleFixture fx;
  ConjunctiveQuery q = MustParseCq(fx.schema, "Q(K) :- r(K, V).");
  Rng rng(2);
  NoiseOptions options;
  options.p = 1.0;
  options.min_block_size = 2;
  options.max_block_size = 5;
  AddQueryAwareNoise(fx.db.get(), q, options, rng);
  BlockIndex index = BlockIndex::Build(*fx.db);
  const RelationBlockIndex& rbi = index.relation(0);
  size_t conflicting = 0;
  for (size_t bid = 0; bid < rbi.NumBlocks(); ++bid) {
    size_t size = rbi.block(bid).size();
    if (size > 1) {
      ++conflicting;
      EXPECT_GE(size, 2u);
      EXPECT_LE(size, 5u);
    }
  }
  EXPECT_EQ(conflicting, 20u);  // p = 1: every relevant fact selected.
}

TEST(NoiseTest, FractionSelectedMatchesP) {
  SimpleFixture fx;
  ConjunctiveQuery q = MustParseCq(fx.schema, "Q(K) :- r(K, V).");
  Rng rng(3);
  NoiseOptions options;
  options.p = 0.5;
  NoiseStats stats = AddQueryAwareNoise(fx.db.get(), q, options, rng);
  EXPECT_EQ(stats.selected_facts, 10u);  // ⌈0.5 · 20⌉.
  BlockIndex index = BlockIndex::Build(*fx.db);
  EXPECT_EQ(index.relation(0).NumConflictingBlocks(), 10u);
}

TEST(NoiseTest, CeilingOnSmallSelections) {
  SimpleFixture fx;
  ConjunctiveQuery q = MustParseCq(fx.schema, "Q(V) :- r(0, V).");
  // One relevant fact; ⌈0.1 · 1⌉ = 1 selected.
  Rng rng(4);
  NoiseOptions options;
  options.p = 0.1;
  NoiseStats stats = AddQueryAwareNoise(fx.db.get(), q, options, rng);
  EXPECT_EQ(stats.relevant_facts, 1u);
  EXPECT_EQ(stats.selected_facts, 1u);
}

TEST(NoiseTest, NoDuplicateFactsInserted) {
  SimpleFixture fx;
  ConjunctiveQuery q = MustParseCq(fx.schema, "Q(K) :- r(K, V).");
  Rng rng(5);
  NoiseOptions options;
  options.p = 1.0;
  AddQueryAwareNoise(fx.db.get(), q, options, rng);
  std::set<Tuple> facts;
  const Relation& rel = fx.db->relation("r");
  for (size_t row = 0; row < rel.size(); ++row) {
    EXPECT_TRUE(facts.insert(rel.row(row)).second)
        << "duplicate " << TupleToString(rel.row(row));
  }
}

TEST(NoiseTest, OriginalFactsAreKept) {
  SimpleFixture fx;
  std::vector<Tuple> original = fx.db->relation("r").rows();
  ConjunctiveQuery q = MustParseCq(fx.schema, "Q(K) :- r(K, V).");
  Rng rng(6);
  NoiseOptions options;
  options.p = 0.7;
  AddQueryAwareNoise(fx.db.get(), q, options, rng);
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(fx.db->relation("r").row(i), original[i]);
  }
}

TEST(NoiseTest, NonKeyValuesComeFromDonors) {
  // Join preservation: every injected non-key value must already occur as
  // the non-key value of some original fact.
  SimpleFixture fx;
  ConjunctiveQuery q = MustParseCq(fx.schema, "Q(K) :- r(K, V).");
  Rng rng(7);
  NoiseOptions options;
  options.p = 1.0;
  AddQueryAwareNoise(fx.db.get(), q, options, rng);
  const Relation& rel = fx.db->relation("r");
  for (size_t row = 20; row < rel.size(); ++row) {
    int64_t v = rel.row(row)[1].AsInt();
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 4);
  }
}

TEST(NoiseTest, QueryAnswersOnlyGrow) {
  // Adding facts can only add homomorphisms; original answers survive.
  SimpleFixture fx;
  ConjunctiveQuery q = MustParseCq(fx.schema, "Q(K) :- r(K, V).");
  CqEvaluator before_eval(fx.db.get());
  std::vector<Tuple> before = before_eval.Evaluate(q);
  Rng rng(8);
  NoiseOptions options;
  options.p = 0.8;
  AddQueryAwareNoise(fx.db.get(), q, options, rng);
  CqEvaluator after_eval(fx.db.get());
  std::vector<Tuple> after = after_eval.Evaluate(q);
  std::set<Tuple> after_set(after.begin(), after.end());
  for (const Tuple& t : before) {
    EXPECT_TRUE(after_set.count(t) > 0) << TupleToString(t);
  }
}

TEST(ObliviousNoiseTest, SelectsFromWholeDatabase) {
  SimpleFixture fx;
  Rng rng(21);
  NoiseOptions options;
  options.p = 1.0;
  NoiseStats stats = AddObliviousNoise(fx.db.get(), options, rng);
  EXPECT_EQ(stats.relevant_facts, 20u);
  EXPECT_EQ(stats.selected_facts, 20u);
  BlockIndex index = BlockIndex::Build(*fx.db);
  EXPECT_EQ(index.relation(0).NumConflictingBlocks(), 20u);
}

TEST(ObliviousNoiseTest, MostlyMissesSelectiveQueries) {
  // The paper's argument for query-awareness: with a selective query,
  // oblivious noise rarely lands on query-relevant facts.
  SimpleFixture fx;
  ConjunctiveQuery q = MustParseCq(fx.schema, "Q(V) :- r(0, V).");
  Rng rng(22);
  NoiseOptions options;
  options.p = 0.1;  // 2 of 20 facts.
  AddObliviousNoise(fx.db.get(), options, rng);
  PreprocessResult pre = BuildSynopses(*fx.db, q);
  size_t conflicting = 0;
  for (const AnswerSynopsis& as : pre.answers()) {
    for (const Synopsis::Block& b : as.synopsis.blocks()) {
      if (b.size > 1) ++conflicting;
    }
  }
  // At most the single relevant block can conflict, and with p = 0.1 it
  // usually does not (seed-pinned here: it does not).
  EXPECT_EQ(conflicting, 0u);
}

TEST(ObliviousNoiseTest, SkipsKeylessRelations) {
  Schema schema;
  schema.AddRelation(RelationSchema("log", {{"m", ValueType::kString}}));
  Database db(&schema);
  db.Insert("log", {Value("x")});
  Rng rng(23);
  NoiseOptions options;
  options.p = 1.0;
  NoiseStats stats = AddObliviousNoise(&db, options, rng);
  EXPECT_EQ(stats.relevant_facts, 0u);
  EXPECT_EQ(stats.facts_added, 0u);
}

TEST(NoiseTest, TpchEndToEnd) {
  TpchOptions tpch;
  tpch.scale_factor = 0.0005;
  Dataset d = GenerateTpch(tpch);
  ConjunctiveQuery q = MustParseCq(
      *d.schema,
      "Q(CK) :- customer(CK, CN, CA, NK, CP, CB, 'BUILDING', CC),"
      " orders(OK, CK, OS, TP, OD, OP, CL, SP, OC).");
  ASSERT_TRUE(CqEvaluator(d.db.get()).HasAnswer(q));
  EXPECT_TRUE(d.db->SatisfiesKeys());
  Rng rng(9);
  NoiseOptions options;
  options.p = 0.5;
  NoiseStats stats = AddQueryAwareNoise(d.db.get(), q, options, rng);
  EXPECT_GT(stats.facts_added, 0u);
  EXPECT_FALSE(d.db->SatisfiesKeys());
  // The synopsis set of the noisy database must now contain conflicts.
  PreprocessResult pre = BuildSynopses(*d.db, q);
  bool has_conflicting_block = false;
  for (const AnswerSynopsis& as : pre.answers()) {
    for (const Synopsis::Block& b : as.synopsis.blocks()) {
      if (b.size > 1) has_conflicting_block = true;
    }
  }
  EXPECT_TRUE(has_conflicting_block);
}

}  // namespace
}  // namespace cqa
