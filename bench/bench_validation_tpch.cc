// Reproduces Figure 5 / Appendix Figure 14: the TPC-H validation
// scenarios. The nine positive TPC-H templates (reduced to CQs) are
// evaluated over eight inconsistent databases of noise 10%..80%.
//
// Expected shape (paper Appendix F): low-balance templates (Q1, Q4, Q6,
// Q12, Q14 — effectively Boolean) behave like the Boolean stress tests
// with Natural fastest; mid/high-balance templates (Q10, Q8) behave like
// non-Boolean ones with KLM fastest and Natural degrading with noise;
// highly selective Q19 is fast for every scheme.

#include "bench/bench_flags.h"
#include "bench/validation_common.h"
#include "gen/tpch.h"

int main(int argc, char** argv) {
  cqa::BenchFlags flags = cqa::BenchFlags::Parse(argc, argv);
  flags.PrintHeader("Figure 5 / Figure 14 — TPC-H validation scenarios");
  cqa::TpchOptions options;
  options.scale_factor = flags.scale_factor;
  options.seed = flags.seed;
  cqa::Dataset base = cqa::GenerateTpch(options);
  return cqa::RunValidationScenarios(
      base, cqa::TpchValidationQueries(*base.schema), flags,
      "bench_validation_tpch");
}
