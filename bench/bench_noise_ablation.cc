// Ablation (ours, reproducing the design argument of §6.1): query-aware
// vs query-oblivious noise. The paper rejects existing error generators
// because they are query-oblivious: "by generating noise in a
// query-oblivious way, we may fail to obtain meaningful datasets ...
// it is likely that we will not affect the evaluation of the query. This
// is because we typically deal with very large databases, while only a
// small portion of them is needed to answer a query."
//
// This binary injects the *same number of conflicting facts* both ways
// and measures what actually reaches the query: the size of the synopsis
// set, the number of conflicting blocks inside it, and the approximation
// schemes' runtime.

#include <algorithm>
#include <cstdio>

#include "bench/bench_flags.h"
#include "bench/harness.h"
#include "gen/noise.h"
#include "gen/tpch.h"
#include "query/parser.h"

namespace cqa {
namespace {

struct Probe {
  size_t facts_added = 0;
  size_t images = 0;
  size_t conflicting_blocks = 0;
  double balance = 0.0;
  double klm_seconds = 0.0;
  double natural_seconds = 0.0;
};

Probe Measure(const Database& noisy, const ConjunctiveQuery& q,
              size_t facts_added, const BenchFlags& flags, Rng& rng,
              const RunSinks& sinks, const obs::RunContext& context) {
  Probe probe;
  probe.facts_added = facts_added;
  PreprocessResult pre = BuildSynopses(noisy, q);
  probe.images = pre.stats().num_distinct_images;
  probe.balance = pre.Balance();
  for (const AnswerSynopsis& as : pre.answers()) {
    for (const Synopsis::Block& b : as.synopsis.blocks()) {
      if (b.size > 1) ++probe.conflicting_blocks;
    }
  }
  ApxParams params;
  for (const SchemeTiming& timing :
       RunAllSchemes(pre, params, flags.timeout_seconds, rng, sinks,
                     context)) {
    if (timing.scheme == SchemeKind::kKlm) {
      probe.klm_seconds = timing.seconds;
    }
    if (timing.scheme == SchemeKind::kNatural) {
      probe.natural_seconds = timing.seconds;
    }
  }
  return probe;
}

int Run(const BenchFlags& flags) {
  flags.PrintHeader("Ablation — query-aware vs query-oblivious noise");

  TpchOptions tpch;
  tpch.scale_factor = flags.scale_factor;
  tpch.seed = flags.seed;
  Dataset base = GenerateTpch(tpch);
  ConjunctiveQuery q = MustParseCq(
      *base.schema,
      "Q(CK, NN) :- customer(CK, CN, CA, NK, CP, CB, 'BUILDING', CC),"
      " orders(OK, CK, OS, TP, OD, OP, CL, SP, OC),"
      " nation(NK, NN, RK, NC).");

  std::printf("%-6s %-10s %10s %10s %12s %10s %10s %10s\n", "p", "mode",
              "added", "images", "confl.blk", "balance", "KLM_s", "Nat_s");
  Rng rng(flags.seed ^ 0xCC9E2D51);
  BenchObs bench_obs(flags, "bench_noise_ablation");
  for (double p : flags.Levels(false, {0.2, 0.6, 1.0})) {
    // Query-aware, the paper's generator.
    Database aware = base.db->Clone();
    NoiseOptions options;
    options.p = p;
    NoiseStats aware_stats = AddQueryAwareNoise(&aware, q, options, rng);
    Probe a = Measure(aware, q, aware_stats.facts_added, flags, rng,
                      bench_obs.sinks,
                      obs::RunContext{"Ablation[aware]", "noise", p});

    // Query-oblivious with a matched conflict budget: scale p down so the
    // same number of facts is selected out of the whole instance.
    size_t keyed_facts = 0;
    for (size_t rid = 0; rid < base.db->NumRelations(); ++rid) {
      if (base.db->relation(rid).schema().has_key()) {
        keyed_facts += base.db->relation(rid).size();
      }
    }
    NoiseOptions oblivious_options = options;
    oblivious_options.p =
        std::max(1e-6, static_cast<double>(aware_stats.selected_facts) /
                           static_cast<double>(keyed_facts));
    Database oblivious = base.db->Clone();
    NoiseStats oblivious_stats =
        AddObliviousNoise(&oblivious, oblivious_options, rng);
    Probe o = Measure(oblivious, q, oblivious_stats.facts_added, flags, rng,
                      bench_obs.sinks,
                      obs::RunContext{"Ablation[oblivious]", "noise", p});

    std::printf("%-6.2f %-10s %10zu %10zu %12zu %10.3f %10.4f %10.4f\n", p,
                "aware", a.facts_added, a.images, a.conflicting_blocks,
                a.balance, a.klm_seconds, a.natural_seconds);
    std::printf("%-6.2f %-10s %10zu %10zu %12zu %10.3f %10.4f %10.4f\n", p,
                "oblivious", o.facts_added, o.images, o.conflicting_blocks,
                o.balance, o.klm_seconds, o.natural_seconds);
  }
  std::printf(
      "\n(equal conflict budgets; 'confl.blk' counts conflicting blocks "
      "inside the query's synopses — the noise that actually stresses the "
      "schemes)\n");
  bench_obs.Finish();
  return 0;
}

}  // namespace
}  // namespace cqa

int main(int argc, char** argv) {
  return cqa::Run(cqa::BenchFlags::Parse(argc, argv));
}
