// Reproduces Figure 3: the distribution of the preprocessing-step running
// time (construction of syn_{Σ,Q}(D)) over all database-query pairs of
// the generated grid, plus the percentile summary of §7 ("for 80% of the
// pairs ... less than 30 seconds; for 94% less than a minute") — at this
// repo's reduced scale the absolute numbers shrink accordingly, the
// distribution shape (strong right-skewed mass at small times) is the
// reproduced object.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_flags.h"
#include "bench/harness.h"
#include "bench/scenario.h"
#include "cqa/preprocess.h"

namespace cqa {
namespace {

int Run(const BenchFlags& flags) {
  flags.PrintHeader("Figure 3 — Preprocessing time distribution");

  ScenarioGridOptions options;
  options.scale_factor = flags.scale_factor;
  options.seed = flags.seed;
  options.join_levels = {1, 2, 3, 4, 5};
  options.queries_per_join = flags.queries_per_level;
  options.noise_levels = flags.Levels(false, {0.2, 0.6, 1.0});
  options.balance_targets = {0.0, 0.5};
  options.max_base_homomorphisms = 1000;
  ScenarioGrid grid = ScenarioGrid::Build(options);

  BenchObs bench_obs(flags, "bench_preprocess");
  std::vector<double> times;
  for (const ScenarioPair& pair : grid.pairs()) {
    PreprocessResult pre = BuildSynopses(*pair.db, pair.query);
    times.push_back(pre.stats().seconds);
    if (bench_obs.sinks.bench_json != nullptr) {
      // One cell over the whole grid: each pair's preprocessing time is
      // one observation, so the JSON carries the distribution summary.
      bench_obs.sinks.bench_json->AddSample(
          "Preprocess", "grid", 0.0, "Preprocess", pre.stats().seconds,
          static_cast<double>(pre.NumAnswers()), false);
    }
  }
  if (times.empty()) {
    std::printf("no pairs generated\n");
    return 1;
  }
  std::sort(times.begin(), times.end());

  // Normalized histogram over 12 equal-width buckets (the paper's
  // Figure 3 renders one bar per second; our times are milliseconds).
  const double max_t = times.back();
  const int kBuckets = 12;
  std::vector<size_t> histogram(kBuckets, 0);
  for (double t : times) {
    int b = max_t > 0 ? static_cast<int>(t / max_t * (kBuckets - 1)) : 0;
    ++histogram[b];
  }
  std::printf("## Histogram (normalized share of pairs per bucket)\n");
  std::printf("%-22s %8s %s\n", "bucket_seconds", "share", "bar");
  for (int b = 0; b < kBuckets; ++b) {
    double lo = max_t * b / kBuckets;
    double hi = max_t * (b + 1) / kBuckets;
    double share = static_cast<double>(histogram[b]) /
                   static_cast<double>(times.size());
    std::printf("[%8.4f, %8.4f) %7.1f%% ", lo, hi, 100.0 * share);
    for (int i = 0; i < static_cast<int>(share * 50); ++i) std::printf("#");
    std::printf("\n");
  }

  auto percentile = [&](double p) {
    size_t idx = static_cast<size_t>(p * (times.size() - 1));
    return times[idx];
  };
  std::printf("\n## Percentiles over %zu pairs\n", times.size());
  std::printf("p50=%.4fs p80=%.4fs p94=%.4fs max=%.4fs\n", percentile(0.5),
              percentile(0.8), percentile(0.94), times.back());
  std::printf(
      "(paper, SF 1.0: 80%% < 30s, 94%% < 60s, max < 120s — same "
      "right-skewed shape, scaled by instance size)\n");
  bench_obs.Finish();
  return 0;
}

}  // namespace
}  // namespace cqa

int main(int argc, char** argv) {
  return cqa::Run(cqa::BenchFlags::Parse(argc, argv));
}
