// Microbenchmarks (google-benchmark) for the design-choice ablations
// DESIGN.md calls out:
//   * per-sample cost of the three samplers as |H| grows — the KL-vs-KLM
//     cost asymmetry (§4.2: KLM always scans all of H);
//   * OptEstimate (DKLR) vs the naive Chernoff-Hoeffding sample bound —
//     why the paper uses the optimal estimator;
//   * synopsis preprocessing throughput;
//   * coverage step cost.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/stopwatch.h"

#include "bench/harness.h"
#include "cqa/coverage.h"
#include "obs/trace.h"
#include "cqa/indexed_natural_sampler.h"
#include "cqa/kl_sampler.h"
#include "cqa/klm_sampler.h"
#include "cqa/natural_sampler.h"
#include "cqa/opt_estimate.h"
#include "cqa/preprocess.h"
#include "gen/noise.h"
#include "gen/tpch.h"
#include "query/parser.h"

namespace cqa {
namespace {

/// Synopsis with `n` images over `n` blocks of size `b`: image i pins
/// block i plus block (i+1) mod n, a chain with heavy overlap.
Synopsis ChainSynopsis(size_t n, size_t b) {
  Synopsis s;
  for (size_t i = 0; i < n; ++i) {
    s.AddBlock(Synopsis::Block{b, 0, i});
  }
  for (uint32_t i = 0; i < n; ++i) {
    s.AddImage({{i, 0}, {(i + 1) % static_cast<uint32_t>(n), 0}});
  }
  return s;
}

void BM_NaturalSamplerDraw(benchmark::State& state) {
  Synopsis s = ChainSynopsis(state.range(0), 3);
  NaturalSampler sampler(&s);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Draw(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NaturalSamplerDraw)->Arg(8)->Arg(64)->Arg(512);

void BM_IndexedNaturalSamplerDraw(benchmark::State& state) {
  Synopsis s = ChainSynopsis(state.range(0), 3);
  IndexedNaturalSampler sampler(&s);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Draw(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexedNaturalSamplerDraw)->Arg(8)->Arg(64)->Arg(512);

void BM_KlSamplerDraw(benchmark::State& state) {
  Synopsis s = ChainSynopsis(state.range(0), 3);
  SymbolicSpace space(&s);
  KlSampler sampler(&space);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Draw(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KlSamplerDraw)->Arg(8)->Arg(64)->Arg(512);

void BM_KlmSamplerDraw(benchmark::State& state) {
  Synopsis s = ChainSynopsis(state.range(0), 3);
  SymbolicSpace space(&s);
  KlmSampler sampler(&space);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Draw(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KlmSamplerDraw)->Arg(8)->Arg(64)->Arg(512);

/// Ablation: DKLR's optimal N vs the naive Chernoff-Hoeffding bound
/// N = 3·ln(2/δ)/(ε²·μ̂) that a zero-variance-unaware estimator would use.
/// Reported as counters so the ratio is visible in the output.
void BM_OptEstimateVsHoeffding(benchmark::State& state) {
  // A low-variance instance: every database of db(B) is covered by
  // exactly one image, so SampleKLM is the constant 1 and the optimal
  // estimator needs a tiny N — while the Hoeffding bound, blind to
  // variance, still demands Θ(ln(1/δ)/ε²) samples.
  Synopsis s;
  s.AddBlock(Synopsis::Block{4, 0, 0});
  for (uint32_t t = 0; t < 4; ++t) s.AddImage({{0, t}});
  SymbolicSpace space(&s);
  KlmSampler sampler(&space);
  const double epsilon = 0.1, delta = 0.25;
  size_t opt_n = 0;
  double mu = 0;
  for (auto _ : state) {
    Rng rng(4);
    OptEstimateResult r = OptEstimate(sampler, epsilon, delta, rng);
    opt_n = r.num_iterations;
    mu = r.mu_hat;
    benchmark::DoNotOptimize(r);
  }
  double hoeffding_n =
      3.0 * std::log(2.0 / delta) / (epsilon * epsilon * mu);
  state.counters["opt_N"] = static_cast<double>(opt_n);
  state.counters["hoeffding_N"] = hoeffding_n;
}
BENCHMARK(BM_OptEstimateVsHoeffding)->Iterations(3);

void BM_CoverageRun(benchmark::State& state) {
  Synopsis s = ChainSynopsis(state.range(0), 3);
  SymbolicSpace space(&s);
  for (auto _ : state) {
    Rng rng(5);
    benchmark::DoNotOptimize(SelfAdjustingCoverage(space, 0.1, 0.25, rng));
  }
}
BENCHMARK(BM_CoverageRun)->Arg(8)->Arg(64);

void BM_PreprocessTpch(benchmark::State& state) {
  TpchOptions options;
  options.scale_factor = 0.0005;
  Dataset d = GenerateTpch(options);
  ConjunctiveQuery q = MustParseCq(
      *d.schema,
      "Q(CK) :- customer(CK, CN, CA, NK, CP, CB, 'BUILDING', CC),"
      " orders(OK, CK, OS, TP, OD, OP, CL, SP, OC).");
  Rng rng(6);
  NoiseOptions noise;
  noise.p = 0.5;
  AddQueryAwareNoise(d.db.get(), q, noise, rng);
  for (auto _ : state) {
    PreprocessResult pre = BuildSynopses(*d.db, q);
    benchmark::DoNotOptimize(pre.NumAnswers());
  }
}
BENCHMARK(BM_PreprocessTpch);

/// Scan-throughput ablation, row path: materialize every row as a Tuple
/// (the pre-columnar access pattern) and filter one column against a
/// constant. Pays a vector + string allocation per row.
void BM_ScanRowView(benchmark::State& state) {
  TpchOptions options;
  options.scale_factor = 0.0005;
  Dataset d = GenerateTpch(options);
  const Relation& rel = d.db->relation("customer");
  const Value want("BUILDING");
  for (auto _ : state) {
    size_t hits = 0;
    for (size_t row = 0; row < rel.size(); ++row) {
      Tuple t = rel.row(row);
      if (t[6] == want) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * rel.size());
}
BENCHMARK(BM_ScanRowView);

/// Scan-throughput ablation, columnar path: consume the same column as
/// raw runs, resolving the constant to a dictionary code once per chunk
/// and comparing uint32 codes row-wise. No allocation, no materialized
/// tuples.
void BM_ScanColumnRuns(benchmark::State& state) {
  TpchOptions options;
  options.scale_factor = 0.0005;
  Dataset d = GenerateTpch(options);
  const Relation& rel = d.db->relation("customer");
  const std::string want = "BUILDING";
  for (auto _ : state) {
    size_t hits = 0;
    rel.ForEachRun(6, [&](const ColumnRun& run) {
      if (run.encoding == SegmentEncoding::kDictionary) {
        const std::string* end = run.string_dict + run.dict_size;
        const std::string* it =
            std::lower_bound(run.string_dict, end, want);
        if (it == end || *it != want) return;
        uint32_t code = static_cast<uint32_t>(it - run.string_dict);
        for (size_t i = 0; i < run.length; ++i) {
          if (run.codes[i] == code) ++hits;
        }
      } else {
        for (size_t i = 0; i < run.length; ++i) {
          if (run.strings[i] == want) ++hits;
        }
      }
    });
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * rel.size());
}
BENCHMARK(BM_ScanColumnRuns);

/// Scan-throughput ablation, pruned point lookup: ScanMatching on the
/// (strictly ascending) customer key, where chunk min/max statistics
/// prune every chunk but the one holding the key.
void BM_ScanMatchingPruned(benchmark::State& state) {
  TpchOptions options;
  options.scale_factor = 0.0005;
  Dataset d = GenerateTpch(options);
  const Relation& rel = d.db->relation("customer");
  const std::vector<size_t> positions = {0};
  int64_t key = static_cast<int64_t>(rel.size() / 2);
  for (auto _ : state) {
    size_t hits = 0;
    rel.ScanMatching(positions, {Value(key)}, [&](size_t) {
      ++hits;
      return true;
    });
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * rel.size());
  state.counters["chunks_pruned"] =
      static_cast<double>(rel.chunks_pruned());
}
BENCHMARK(BM_ScanMatchingPruned);

/// Ablation: the synopsis abstraction itself — approximating over the
/// synopsis vs the cost of even *scanning* the whole database once per
/// sample (what a synopsis-free implementation would pay).
void BM_WholeDatabaseScan(benchmark::State& state) {
  TpchOptions options;
  options.scale_factor = 0.0005;
  Dataset d = GenerateTpch(options);
  for (auto _ : state) {
    size_t count = 0;
    for (size_t rid = 0; rid < d.db->NumRelations(); ++rid) {
      count += d.db->relation(rid).size();
    }
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_WholeDatabaseScan);

/// Machine-readable mode (--bench_json= and friends): instead of the
/// google-benchmark loops, run a small fixed-seed four-scheme matrix over
/// a noisy TPC-H pair — repeated trials per cell, with convergence
/// recording — and write the versioned BENCH_*.json the regression gate
/// (tools/bench_compare.py) consumes.
/// The preprocess-and-scan row (--scan_sf=): builds a noisy TPC-H pair at
/// the given scale factor and records, as plain timing cells, synopsis
/// preprocessing plus the row-view and column-run scan ablations over the
/// customer relation. Gated by tools/bench_compare.py like every other
/// cell of BENCH_micro.json.
void RunScanCells(obs::BenchJsonWriter* writer, uint64_t seed,
                  double scan_sf) {
  TpchOptions options;
  options.scale_factor = scan_sf;
  options.seed = seed;
  Dataset d = GenerateTpch(options);
  ConjunctiveQuery q = MustParseCq(
      *d.schema,
      "Q(CK) :- customer(CK, CN, CA, NK, CP, CB, 'BUILDING', CC),"
      " orders(OK, CK, OS, TP, OD, OP, CL, SP, OC).");
  Rng rng(seed ^ 0x9E3779B9);
  NoiseOptions noise;
  noise.p = 0.3;
  AddQueryAwareNoise(d.db.get(), q, noise, rng);
  const Relation& rel = d.db->relation("customer");
  const double rows = static_cast<double>(rel.size());
  const Value want("BUILDING");
  for (int trial = 0; trial < 3; ++trial) {
    Stopwatch pre_watch;
    PreprocessResult pre = BuildSynopses(*d.db, q);
    writer->AddSample("Scan", "sf", scan_sf, "Preprocess",
                      pre_watch.ElapsedSeconds(),
                      static_cast<double>(pre.NumAnswers()), false);

    Stopwatch row_watch;
    size_t row_hits = 0;
    for (size_t row = 0; row < rel.size(); ++row) {
      Tuple t = rel.row(row);
      if (t[6] == want) ++row_hits;
    }
    writer->AddSample("Scan", "sf", scan_sf, "RowScan",
                      row_watch.ElapsedSeconds(), rows, false);

    Stopwatch col_watch;
    size_t col_hits = 0;
    rel.ScanMatching({6}, {want}, [&](size_t) {
      ++col_hits;
      return true;
    });
    writer->AddSample("Scan", "sf", scan_sf, "ColumnScan",
                      col_watch.ElapsedSeconds(), rows, false);
    CQA_CHECK(row_hits == col_hits);
  }
}

int RunConvergenceMatrix(const std::string& json_path, uint64_t seed,
                         const std::string& convergence_path,
                         const std::string& chrome_path, double scan_sf) {
  const double kTimeoutSeconds = 5.0;
  obs::BenchJsonWriter writer;
  obs::BenchMetadata meta;
  meta.name = "bench_micro";
  meta.seed = seed;
  meta.scale_factor = 0.0005;
  meta.timeout_seconds = kTimeoutSeconds;
  meta.queries_per_level = 1;
  writer.SetMetadata(meta);

  obs::ConvergenceReporter convergence;
  RunSinks sinks;
  sinks.bench_json = &writer;
  std::string error;
  if (!convergence_path.empty()) {
    if (!convergence.Open(convergence_path, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    sinks.convergence = &convergence;
  }

  TpchOptions options;
  options.scale_factor = 0.0005;
  options.seed = seed;
  Dataset d = GenerateTpch(options);
  ConjunctiveQuery q = MustParseCq(
      *d.schema,
      "Q(CK) :- customer(CK, CN, CA, NK, CP, CB, 'BUILDING', CC),"
      " orders(OK, CK, OS, TP, OD, OP, CL, SP, OC).");
  Rng rng(seed ^ 0x2545F491);
  ApxParams params;
  for (double p : {0.2, 0.6}) {
    Database noisy = d.db->Clone();
    NoiseOptions noise;
    noise.p = p;
    AddQueryAwareNoise(&noisy, q, noise, rng);
    PreprocessResult pre = BuildSynopses(noisy, q);
    obs::RunContext context{"Micro", "noise", p};
    for (int trial = 0; trial < 3; ++trial) {
      RunAllSchemes(pre, params, kTimeoutSeconds, rng, sinks, context);
    }
  }

  if (scan_sf > 0.0) RunScanCells(&writer, seed, scan_sf);

  if (!json_path.empty()) {
    if (!writer.WriteFile(json_path, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::printf("bench json: %s (%zu cells)\n", json_path.c_str(),
                writer.num_cells());
  }
  if (!chrome_path.empty()) {
    if (!obs::TraceBuffer::Instance().ExportChromeTrace(chrome_path,
                                                        &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::printf("chrome trace: %s\n", chrome_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace cqa

int main(int argc, char** argv) {
  // Our machine-readable flags are peeled off before google-benchmark
  // sees the command line (it rejects flags it does not know).
  std::string bench_json, obs_convergence, obs_trace_chrome;
  uint64_t seed = 20210620;
  double scan_sf = 0.0;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    char* arg = argv[i];
    if (std::strncmp(arg, "--bench_json=", 13) == 0) {
      bench_json = arg + 13;
    } else if (std::strncmp(arg, "--obs_convergence=", 18) == 0) {
      obs_convergence = arg + 18;
    } else if (std::strncmp(arg, "--obs_trace_chrome=", 19) == 0) {
      obs_trace_chrome = arg + 19;
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--scan_sf=", 10) == 0) {
      scan_sf = std::strtod(arg + 10, nullptr);
    } else {
      passthrough.push_back(arg);
    }
  }
  if (!bench_json.empty() || !obs_convergence.empty() ||
      !obs_trace_chrome.empty()) {
    return cqa::RunConvergenceMatrix(bench_json, seed, obs_convergence,
                                     obs_trace_chrome, scan_sf);
  }
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
