#ifndef CQABENCH_BENCH_VALIDATION_COMMON_H_
#define CQABENCH_BENCH_VALIDATION_COMMON_H_

#include <cstdio>
#include <vector>

#include "bench/bench_flags.h"
#include "bench/harness.h"
#include "gen/dataset.h"
#include "gen/noise.h"
#include "gen/workloads.h"
#include "query/evaluator.h"

namespace cqa {

/// Shared driver of the validation scenarios (Appendix F, Figures 5/14/15):
/// for each workload query, build the 8 inconsistent databases of noise
/// 10%..80%, run every scheme, and print the per-noise series together
/// with the average/stddev of the query's balance across those databases
/// (the annotation the paper places above each plot).
inline int RunValidationScenarios(const Dataset& base,
                                  const std::vector<NamedQuery>& workload,
                                  const BenchFlags& flags,
                                  const char* bench_name) {
  const std::vector<double> kNoise{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8};
  ApxParams params;
  Rng rng(flags.seed ^ 0xA341316C);
  BenchObs bench_obs(flags, bench_name);

  for (const NamedQuery& named : workload) {
    CqEvaluator eval(base.db.get());
    if (!eval.HasAnswer(named.query)) {
      std::printf("## Validation[%s]: empty on this instance, skipped\n\n",
                  named.name.c_str());
      continue;
    }
    SeriesTable table("noise");
    MeanVarAccumulator balance;
    char scenario[128];
    std::snprintf(scenario, sizeof(scenario), "Validation[%s]",
                  named.name.c_str());
    for (double p : kNoise) {
      Database noisy = base.db->Clone();
      NoiseOptions noise;
      noise.p = p;
      AddQueryAwareNoise(&noisy, named.query, noise, rng);
      PreprocessResult pre = BuildSynopses(noisy, named.query);
      balance.Add(pre.Balance());
      obs::RunContext context{scenario, "noise", p};
      for (const SchemeTiming& timing :
           RunAllSchemes(pre, params, flags.timeout_seconds, rng,
                         bench_obs.sinks, context)) {
        table.Add(p, timing.scheme, timing);
      }
    }
    char title[160];
    std::snprintf(title, sizeof(title),
                  "Validation[%s] — avg/std balance: %.2f%% / %.2f%%",
                  named.name.c_str(), 100.0 * balance.mean(),
                  100.0 * balance.stddev());
    table.Print(title);
  }
  bench_obs.Finish();
  return 0;
}

}  // namespace cqa

#endif  // CQABENCH_BENCH_VALIDATION_COMMON_H_
