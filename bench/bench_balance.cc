// Reproduces Figure 2 (and Appendix Figures 8-9): the balance scenarios
// Balance[noise, joins]. For each (noise p, joins j) cell it prints the
// mean running time of the four schemes as the balance of the query
// grows.
//
// Expected shape (paper §7.1): Natural is the worst performer and
// degrades with balance; KL/KLM are best; Cover is the only scheme whose
// running time *decreases* as balance increases (its iteration budget is
// linear in |H|, which shrinks).

#include <cstdio>

#include "bench/bench_flags.h"
#include "bench/harness.h"
#include "bench/scenario.h"

namespace cqa {
namespace {

int Run(const BenchFlags& flags) {
  flags.PrintHeader("Figure 2 / Figures 8-9 — Balance scenarios");

  ScenarioGridOptions options;
  options.scale_factor = flags.scale_factor;
  options.seed = flags.seed;
  options.join_levels = {1, 3, 5};
  options.queries_per_join = flags.queries_per_level;
  options.noise_levels = {0.2, 0.6};
  options.balance_targets = flags.Levels(false, {0.2, 0.5, 0.8, 1.0});
  options.max_base_homomorphisms = 1000;
  ScenarioGrid grid = ScenarioGrid::Build(options);

  ApxParams params;
  Rng rng(flags.seed ^ 0xB5297A4D);
  BenchObs bench_obs(flags, "bench_balance");

  size_t cover_improvement_cells = 0, cover_cells = 0;
  size_t natural_worst_points = 0, total_points = 0;

  for (double noise : options.noise_levels) {
    for (size_t joins : options.join_levels) {
      char title[128];
      std::snprintf(title, sizeof(title), "Balance[%.1f, %zu]", noise, joins);
      SeriesTable table("balance");
      for (const ScenarioPair* pair :
           grid.Select(joins, noise, std::nullopt)) {
        PreprocessResult pre = BuildSynopses(*pair->db, pair->query);
        obs::RunContext context{title, "balance", pair->balance_target};
        for (const SchemeTiming& timing :
             RunAllSchemes(pre, params, flags.timeout_seconds, rng,
                           bench_obs.sinks, context)) {
          table.Add(pair->balance_target, timing.scheme, timing);
        }
      }
      table.Print(title);

      // Cover trend across balance within this cell.
      double first = table.Mean(options.balance_targets.front(),
                                SchemeKind::kCover);
      double last =
          table.Mean(options.balance_targets.back(), SchemeKind::kCover);
      if (first >= 0 && last >= 0) {
        ++cover_cells;
        if (last <= first) ++cover_improvement_cells;
      }
      for (double b : options.balance_targets) {
        double natural = table.Mean(b, SchemeKind::kNatural);
        if (natural < 0) continue;
        ++total_points;
        bool worst = true;
        for (SchemeKind kind : AllSchemeKinds()) {
          if (kind == SchemeKind::kNatural) continue;
          if (table.Mean(b, kind) > natural) worst = false;
        }
        if (worst) ++natural_worst_points;
      }
    }
  }

  std::printf("## Take-home summary (paper §7.2)\n");
  std::printf("cells where Cover improves from lowest to highest balance: "
              "%zu/%zu\n",
              cover_improvement_cells, cover_cells);
  std::printf("points where Natural is the single worst performer:        "
              "%zu/%zu\n",
              natural_worst_points, total_points);
  bench_obs.Finish();
  return 0;
}

}  // namespace
}  // namespace cqa

int main(int argc, char** argv) {
  return cqa::Run(cqa::BenchFlags::Parse(argc, argv));
}
