#ifndef CQABENCH_BENCH_BENCH_FLAGS_H_
#define CQABENCH_BENCH_BENCH_FLAGS_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "obs/bench_json.h"
#include "obs/convergence.h"
#ifndef CQABENCH_NO_OBS
#include "obs/profiler.h"
#endif
#include "obs/report.h"
#include "obs/trace.h"

namespace cqa {

/// Common command-line knobs of the harness binaries. Defaults are sized
/// so each binary finishes in a couple of minutes on one core; the paper's
/// full grids (SF 1.0, 1-hour timeout) are reachable by flag.
///
/// Unknown flags are a hard error: a typo like --obs_reprot= must fail
/// loudly instead of silently producing no report.
struct BenchFlags {
  double scale_factor = 0.0008;
  double timeout_seconds = 1.0;
  uint64_t seed = 20210620;
  size_t queries_per_level = 2;
  /// Switches the binary from its quick default grid to a denser,
  /// paper-like grid (10 noise levels, more queries per level).
  bool full = false;
  /// JSONL run report path (one record per scheme run); empty = off.
  std::string obs_report;
  /// JSONL trace-span export path; empty = off.
  std::string obs_trace;
  /// Chrome trace_event export path (loads in Perfetto); empty = off.
  std::string obs_trace_chrome;
  /// JSONL convergence-series export path; empty = off. Turns on
  /// per-draw convergence recording for the driven runs.
  std::string obs_convergence;
  /// Versioned machine-readable benchmark result path (BENCH_*.json);
  /// empty = off. Also turns on convergence recording (the file carries
  /// convergence summaries).
  std::string bench_json;
  /// Gzipped pprof CPU-profile output path; empty = off. Setting either
  /// profile path samples the whole grid run (obs/profiler.h). Rejected
  /// loudly in CQABENCH_NO_OBS builds, where the profiler is absent.
  std::string obs_profile;
  /// Collapsed-stack (flamegraph.pl / speedscope) output path; empty =
  /// off. May be combined with --obs_profile.
  std::string obs_profile_fold;
  /// Sampling rate for --obs_profile/--obs_profile_fold, per thread, in
  /// samples per second of CPU time.
  int obs_profile_hz = 99;

  static BenchFlags Parse(int argc, char** argv) {
    BenchFlags flags;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--sf=", 5) == 0) {
        flags.scale_factor = std::atof(arg + 5);
      } else if (std::strncmp(arg, "--timeout=", 10) == 0) {
        flags.timeout_seconds = std::atof(arg + 10);
      } else if (std::strncmp(arg, "--seed=", 7) == 0) {
        flags.seed = std::strtoull(arg + 7, nullptr, 10);
      } else if (std::strncmp(arg, "--queries=", 10) == 0) {
        flags.queries_per_level = std::strtoull(arg + 10, nullptr, 10);
      } else if (std::strncmp(arg, "--obs_report=", 13) == 0) {
        flags.obs_report = arg + 13;
        if (flags.obs_report.empty()) {
          std::fprintf(stderr, "--obs_report needs a path\n");
          std::exit(1);
        }
      } else if (std::strncmp(arg, "--obs_trace=", 12) == 0) {
        flags.obs_trace = arg + 12;
        if (flags.obs_trace.empty()) {
          std::fprintf(stderr, "--obs_trace needs a path\n");
          std::exit(1);
        }
      } else if (std::strncmp(arg, "--obs_trace_chrome=", 19) == 0) {
        flags.obs_trace_chrome = arg + 19;
        if (flags.obs_trace_chrome.empty()) {
          std::fprintf(stderr, "--obs_trace_chrome needs a path\n");
          std::exit(1);
        }
      } else if (std::strncmp(arg, "--obs_convergence=", 18) == 0) {
        flags.obs_convergence = arg + 18;
        if (flags.obs_convergence.empty()) {
          std::fprintf(stderr, "--obs_convergence needs a path\n");
          std::exit(1);
        }
      } else if (std::strncmp(arg, "--bench_json=", 13) == 0) {
        flags.bench_json = arg + 13;
        if (flags.bench_json.empty()) {
          std::fprintf(stderr, "--bench_json needs a path\n");
          std::exit(1);
        }
      } else if (std::strncmp(arg, "--obs_profile=", 14) == 0 ||
                 std::strncmp(arg, "--obs_profile_fold=", 19) == 0 ||
                 std::strncmp(arg, "--obs_profile_hz=", 17) == 0) {
#ifdef CQABENCH_NO_OBS
        std::fprintf(stderr,
                     "error: %s requires an observability build; this "
                     "binary was compiled with CQABENCH_NO_OBS\n",
                     arg);
        std::exit(1);
#else
        if (std::strncmp(arg, "--obs_profile=", 14) == 0) {
          flags.obs_profile = arg + 14;
          if (flags.obs_profile.empty()) {
            std::fprintf(stderr, "--obs_profile needs a path\n");
            std::exit(1);
          }
        } else if (std::strncmp(arg, "--obs_profile_fold=", 19) == 0) {
          flags.obs_profile_fold = arg + 19;
          if (flags.obs_profile_fold.empty()) {
            std::fprintf(stderr, "--obs_profile_fold needs a path\n");
            std::exit(1);
          }
        } else {
          flags.obs_profile_hz = std::atoi(arg + 17);
          if (flags.obs_profile_hz < 1 || flags.obs_profile_hz > 1000) {
            std::fprintf(stderr, "--obs_profile_hz must be in [1, 1000]\n");
            std::exit(1);
          }
        }
#endif  // CQABENCH_NO_OBS
      } else if (std::strcmp(arg, "--full") == 0) {
        flags.full = true;
        flags.queries_per_level = 5;
      } else if (std::strcmp(arg, "--help") == 0) {
        std::printf(
            "flags: --sf=<scale factor> --timeout=<s per scheme run> "
            "--seed=<n> --queries=<per level> --full "
            "--obs_report=<jsonl path> --obs_trace=<jsonl path> "
            "--obs_trace_chrome=<json path> --obs_convergence=<jsonl path> "
            "--bench_json=<json path> --obs_profile=<pprof.gz path> "
            "--obs_profile_fold=<folded path> --obs_profile_hz=<1..1000>\n");
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown flag %s (see --help)\n", arg);
        std::exit(1);
      }
    }
    // Fail on unwritable late-export paths now, not after the whole grid
    // has run (those exports happen last; a typo'd directory would
    // otherwise cost the entire run its output).
    for (const std::string* path :
         {&flags.obs_trace, &flags.obs_trace_chrome, &flags.bench_json,
          &flags.obs_profile, &flags.obs_profile_fold}) {
      if (path->empty()) continue;
      std::FILE* probe = std::fopen(path->c_str(), "w");
      if (probe == nullptr) {
        std::fprintf(stderr, "error: cannot open %s for writing\n",
                     path->c_str());
        std::exit(1);
      }
      std::fclose(probe);
    }
    return flags;
  }

  /// Opens the JSONL run reporter when --obs_report was given; exits on
  /// I/O error (a benchmark run whose report silently vanishes is worse
  /// than no run). Returns the reporter to pass to RunAllSchemes, or
  /// nullptr when reporting is off.
  obs::RunReporter* MaybeOpenReport(obs::RunReporter* reporter) const {
    if (obs_report.empty()) return nullptr;
    std::string error;
    if (!reporter->Open(obs_report, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      std::exit(1);
    }
    return reporter;
  }

  /// Exports the buffered trace spans when --obs_trace and/or
  /// --obs_trace_chrome were given. Call once, after the grid finishes.
  void MaybeExportTrace() const {
    std::string error;
    if (!obs_trace.empty() &&
        !obs::TraceBuffer::Instance().ExportJsonl(obs_trace, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      std::exit(1);
    }
    if (!obs_trace_chrome.empty() &&
        !obs::TraceBuffer::Instance().ExportChromeTrace(obs_trace_chrome,
                                                        &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      std::exit(1);
    }
  }

  /// Noise/balance axis for the binary: the quick default or the paper's
  /// ten levels under --full. `with_zero` prepends 0 (Boolean targets).
  std::vector<double> Levels(bool with_zero,
                             std::vector<double> quick) const {
    std::vector<double> levels;
    // Reserve + push_back (rather than a range insert) keeps GCC 12's
    // -Wstringop-overflow from flagging the grow-and-memmove path.
    levels.reserve(quick.size() + 11);
    if (with_zero) levels.push_back(0.0);
    if (full) {
      for (int i = 1; i <= 10; ++i) levels.push_back(i / 10.0);
    } else {
      for (double level : quick) levels.push_back(level);
    }
    return levels;
  }

  void PrintHeader(const char* figure) const {
    std::printf(
        "# %s\n# config: sf=%g timeout=%gs seed=%llu queries_per_level=%zu "
        "epsilon=0.1 delta=0.25\n\n",
        figure, scale_factor, timeout_seconds,
        static_cast<unsigned long long>(seed), queries_per_level);
  }
};

/// Owns the observability sinks a bench binary's flags asked for and
/// bundles them into the RunSinks the harness fans results out to.
/// Construct once after Parse, pass `.sinks` to RunAllSchemes, call
/// Finish() once after the grid. Exits on I/O errors (a benchmark run
/// whose outputs silently vanish is worse than no run).
struct BenchObs {
  obs::RunReporter report;
  obs::ConvergenceReporter convergence;
  obs::BenchJsonWriter bench_json;
  RunSinks sinks;

  BenchObs(const BenchFlags& flags, const char* bench_name) : flags_(flags) {
#ifndef CQABENCH_NO_OBS
    if (!flags.obs_profile.empty() || !flags.obs_profile_fold.empty()) {
      obs::ProfilerOptions popts;
      popts.hz = flags.obs_profile_hz;
      std::string error;
      if (!obs::Profiler::Instance().Start(popts, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        std::exit(1);
      }
      profiling_ = true;
    }
#endif
    sinks.report = flags.MaybeOpenReport(&report);
    if (!flags.obs_convergence.empty()) {
      std::string error;
      if (!convergence.Open(flags.obs_convergence, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        std::exit(1);
      }
      sinks.convergence = &convergence;
    }
    if (!flags.bench_json.empty()) {
      obs::BenchMetadata meta;
      meta.name = bench_name;
      meta.seed = flags.seed;
      meta.scale_factor = flags.scale_factor;
      meta.timeout_seconds = flags.timeout_seconds;
      meta.queries_per_level = flags.queries_per_level;
      bench_json.SetMetadata(meta);
      sinks.bench_json = &bench_json;
    }
  }

  BenchObs(const BenchObs&) = delete;
  BenchObs& operator=(const BenchObs&) = delete;

  /// Writes the BENCH_*.json file (when asked for), exports traces, and
  /// stops + writes the CPU profile (when profiling was on).
  void Finish() {
    if (sinks.bench_json != nullptr) {
      std::string error;
      if (!bench_json.WriteFile(flags_.bench_json, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        std::exit(1);
      }
      std::printf("# bench json: %s (%zu cells)\n", flags_.bench_json.c_str(),
                  bench_json.num_cells());
    }
    flags_.MaybeExportTrace();
#ifndef CQABENCH_NO_OBS
    if (profiling_) {
      obs::Profiler& profiler = obs::Profiler::Instance();
      profiler.Stop();
      const obs::ProfilerStats stats = profiler.stats();
      if (!flags_.obs_profile.empty()) {
        WriteOrDie(flags_.obs_profile, profiler.PprofGzipped());
      }
      if (!flags_.obs_profile_fold.empty()) {
        WriteOrDie(flags_.obs_profile_fold, profiler.FoldedText());
      }
      std::printf("# cpu profile: %llu samples, %llu stacks, %llu dropped\n",
                  static_cast<unsigned long long>(stats.samples),
                  static_cast<unsigned long long>(stats.distinct_stacks),
                  static_cast<unsigned long long>(stats.dropped_ring +
                                                  stats.dropped_untracked));
      profiling_ = false;
    }
#endif
  }

 private:
  static void WriteOrDie(const std::string& path, const std::string& data) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr || std::fwrite(data.data(), 1, data.size(), f) !=
                            data.size()) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      std::exit(1);
    }
    std::fclose(f);
  }

  BenchFlags flags_;
  bool profiling_ = false;
};

}  // namespace cqa

#endif  // CQABENCH_BENCH_BENCH_FLAGS_H_
