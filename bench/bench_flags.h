#ifndef CQABENCH_BENCH_BENCH_FLAGS_H_
#define CQABENCH_BENCH_BENCH_FLAGS_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace cqa {

/// Common command-line knobs of the harness binaries. Defaults are sized
/// so each binary finishes in a couple of minutes on one core; the paper's
/// full grids (SF 1.0, 1-hour timeout) are reachable by flag.
struct BenchFlags {
  double scale_factor = 0.0008;
  double timeout_seconds = 1.0;
  uint64_t seed = 20210620;
  size_t queries_per_level = 2;
  /// Switches the binary from its quick default grid to a denser,
  /// paper-like grid (10 noise levels, more queries per level).
  bool full = false;

  static BenchFlags Parse(int argc, char** argv) {
    BenchFlags flags;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--sf=", 5) == 0) {
        flags.scale_factor = std::atof(arg + 5);
      } else if (std::strncmp(arg, "--timeout=", 10) == 0) {
        flags.timeout_seconds = std::atof(arg + 10);
      } else if (std::strncmp(arg, "--seed=", 7) == 0) {
        flags.seed = std::strtoull(arg + 7, nullptr, 10);
      } else if (std::strncmp(arg, "--queries=", 10) == 0) {
        flags.queries_per_level = std::strtoull(arg + 10, nullptr, 10);
      } else if (std::strcmp(arg, "--full") == 0) {
        flags.full = true;
        flags.queries_per_level = 5;
      } else if (std::strcmp(arg, "--help") == 0) {
        std::printf(
            "flags: --sf=<scale factor> --timeout=<s per scheme run> "
            "--seed=<n> --queries=<per level> --full\n");
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown flag %s (see --help)\n", arg);
        std::exit(1);
      }
    }
    return flags;
  }

  /// Noise/balance axis for the binary: the quick default or the paper's
  /// ten levels under --full. `with_zero` prepends 0 (Boolean targets).
  std::vector<double> Levels(bool with_zero,
                             std::vector<double> quick) const {
    std::vector<double> levels;
    if (with_zero) levels.push_back(0.0);
    if (full) {
      for (int i = 1; i <= 10; ++i) levels.push_back(i / 10.0);
    } else {
      levels.insert(levels.end(), quick.begin(), quick.end());
    }
    return levels;
  }

  void PrintHeader(const char* figure) const {
    std::printf(
        "# %s\n# config: sf=%g timeout=%gs seed=%llu queries_per_level=%zu "
        "epsilon=0.1 delta=0.25\n\n",
        figure, scale_factor, timeout_seconds,
        static_cast<unsigned long long>(seed), queries_per_level);
  }
};

}  // namespace cqa

#endif  // CQABENCH_BENCH_BENCH_FLAGS_H_
