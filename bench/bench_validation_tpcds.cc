// Reproduces Appendix Figure 15: the TPC-DS validation scenarios over the
// snowflake-core subset schema. Eight positive TPC-DS templates (reduced
// to CQs) are evaluated across noise 10%..80%.
//
// Expected shape (paper Appendix F): low-balance templates (Q1, Q60, Q62)
// follow the Boolean regime (Natural best), mid/high-balance templates
// (Q33, Q65, Q66, Q68) follow the non-Boolean regime (KLM best, Natural
// degrading with noise).

#include "bench/bench_flags.h"
#include "bench/validation_common.h"
#include "gen/tpcds.h"

int main(int argc, char** argv) {
  cqa::BenchFlags flags = cqa::BenchFlags::Parse(argc, argv);
  flags.PrintHeader("Figure 15 — TPC-DS validation scenarios");
  cqa::TpcdsOptions options;
  options.scale_factor = flags.scale_factor;
  options.seed = flags.seed;
  cqa::Dataset base = cqa::GenerateTpcds(options);
  return cqa::RunValidationScenarios(
      base, cqa::TpcdsValidationQueries(*base.schema), flags,
      "bench_validation_tpcds");
}
