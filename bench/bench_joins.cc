// Reproduces Figure 4 (and Appendix Figures 10-13): the join scenarios
// Joins[noise, balance]. Because each join level carries a different
// batch of queries, the paper plots the *share* of the total running time
// each scheme takes at that join level instead of absolute seconds; this
// binary prints the same normalized series.
//
// Expected shape (paper Appendix E): Boolean case — Natural takes a tiny
// share everywhere, KLM beats KL at few joins but KL catches up (and may
// pass it) as joins grow; non-Boolean case — Natural's share grows with
// joins, KL(M) stay smallest.

#include <cstdio>
#include <map>

#include "bench/bench_flags.h"
#include "bench/harness.h"
#include "bench/scenario.h"

namespace cqa {
namespace {

int Run(const BenchFlags& flags) {
  flags.PrintHeader("Figure 4 / Figures 10-13 — Join scenarios");

  ScenarioGridOptions options;
  options.scale_factor = flags.scale_factor;
  options.seed = flags.seed;
  options.join_levels = {1, 2, 3, 4, 5};
  options.queries_per_join = flags.queries_per_level;
  options.noise_levels = {0.2, 0.6};
  options.balance_targets = {0.0, 0.5};
  options.max_base_homomorphisms = 1000;
  ScenarioGrid grid = ScenarioGrid::Build(options);

  ApxParams params;
  Rng rng(flags.seed ^ 0x68E31DA4);
  BenchObs bench_obs(flags, "bench_joins");

  for (double noise : options.noise_levels) {
    for (double balance : options.balance_targets) {
      char title[128];
      std::snprintf(title, sizeof(title), "Joins[%.1f, %.1f]", noise,
                    balance);
      // mean seconds per (joins, scheme), then normalized per join level.
      std::map<size_t, std::map<SchemeKind, MeanVarAccumulator>> cells;
      for (const ScenarioPair* pair :
           grid.Select(std::nullopt, noise, balance)) {
        PreprocessResult pre = BuildSynopses(*pair->db, pair->query);
        obs::RunContext context{title, "joins",
                                static_cast<double>(pair->joins)};
        for (const SchemeTiming& timing :
             RunAllSchemes(pre, params, flags.timeout_seconds, rng,
                           bench_obs.sinks, context)) {
          cells[pair->joins][timing.scheme].Add(timing.seconds);
        }
      }
      std::printf("## Joins[%.1f, %.1f] — share of running time (%%)\n",
                  noise, balance);
      std::printf("%-6s %10s %10s %10s %10s\n", "joins", "Natural", "KL",
                  "KLM", "Cover");
      for (auto& [joins, per_scheme] : cells) {
        double total = 0.0;
        for (SchemeKind kind : AllSchemeKinds()) {
          total += per_scheme[kind].mean();
        }
        if (total <= 0.0) continue;
        std::printf("%-6zu", joins);
        for (SchemeKind kind :
             {SchemeKind::kNatural, SchemeKind::kKl, SchemeKind::kKlm,
              SchemeKind::kCover}) {
          std::printf(" %9.1f%%", 100.0 * per_scheme[kind].mean() / total);
        }
        std::printf("\n");
      }
      std::printf("\n");
    }
  }
  bench_obs.Finish();
  return 0;
}

}  // namespace
}  // namespace cqa

int main(int argc, char** argv) {
  return cqa::Run(cqa::BenchFlags::Parse(argc, argv));
}
