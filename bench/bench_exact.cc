// Ablation (ours, motivated by §1-§2): exact computation of the relative
// frequency vs the randomized approximation schemes. RelativeFreq is
// #P-hard, so any exact method — here the component-decomposed
// inclusion-exclusion oracle — must blow up as the noise (and with it the
// overlap between homomorphic images) grows, while the (ε, δ) schemes
// keep polynomial cost. This regenerates the feasibility argument the
// paper makes when it "gives up exact solutions".

#include <cstdio>
#include <optional>

#include "bench/bench_flags.h"
#include "bench/harness.h"
#include "common/stopwatch.h"
#include "cqa/exact.h"
#include "gen/noise.h"
#include "gen/tpch.h"
#include "query/parser.h"

namespace cqa {
namespace {

struct ExactOutcome {
  double seconds = 0.0;
  size_t infeasible = 0;  // Synopses the oracle refused (budget).
  size_t total = 0;
};

ExactOutcome RunExact(const PreprocessResult& pre, double timeout_seconds) {
  ExactOutcome outcome;
  Stopwatch watch;
  for (const AnswerSynopsis& as : pre.answers()) {
    ++outcome.total;
    if (!ExactRatioDecomposed(as.synopsis, /*max_component_images=*/20)
             .has_value()) {
      ++outcome.infeasible;
    }
    if (watch.ElapsedSeconds() > timeout_seconds) {
      outcome.infeasible += pre.NumAnswers() - outcome.total;
      outcome.total = pre.NumAnswers();
      break;
    }
  }
  outcome.seconds = watch.ElapsedSeconds();
  return outcome;
}

int Run(const BenchFlags& flags) {
  flags.PrintHeader("Ablation — exact relative frequency vs approximation");

  TpchOptions tpch;
  tpch.scale_factor = flags.scale_factor;
  tpch.seed = flags.seed;
  Dataset base = GenerateTpch(tpch);
  ConjunctiveQuery q = MustParseCq(
      *base.schema,
      "Q(CK, NN) :- customer(CK, CN, CA, NK, CP, CB, 'BUILDING', CC),"
      " orders(OK, CK, OS, TP, OD, OP, CL, SP, OC),"
      " nation(NK, NN, RK, NC).");

  ApxParams params;
  Rng rng(flags.seed ^ 0x1B873593);
  BenchObs bench_obs(flags, "bench_exact");
  std::printf("%-6s %10s %14s %10s %10s\n", "noise", "exact_s",
              "infeasible", "KLM_s", "Natural_s");
  for (double p : flags.Levels(false, {0.1, 0.3, 0.5, 0.7})) {
    Database noisy = base.db->Clone();
    NoiseOptions noise;
    noise.p = p;
    AddQueryAwareNoise(&noisy, q, noise, rng);
    PreprocessResult pre = BuildSynopses(noisy, q);

    ExactOutcome exact = RunExact(pre, flags.timeout_seconds);

    Stopwatch klm_watch;
    CqaRunResult klm = ApxCqaOnSynopses(pre, SchemeKind::kKlm, params, rng,
                                        Deadline(flags.timeout_seconds));
    double klm_s = klm_watch.ElapsedSeconds();

    Stopwatch nat_watch;
    CqaRunResult nat = ApxCqaOnSynopses(pre, SchemeKind::kNatural, params,
                                        rng, Deadline(flags.timeout_seconds));
    double nat_s = nat_watch.ElapsedSeconds();

    std::printf("%-6.2f %10.4f %8zu/%-5zu %9.4f%s %9.4f%s\n", p,
                exact.seconds, exact.infeasible, exact.total, klm_s,
                klm.timed_out ? "*" : " ", nat_s,
                nat.timed_out ? "*" : " ");
    if (bench_obs.sinks.bench_json != nullptr) {
      obs::BenchJsonWriter* json = bench_obs.sinks.bench_json;
      json->AddSample("Exact", "noise", p, "Exact", exact.seconds,
                      static_cast<double>(exact.total), false);
      json->AddSample("Exact", "noise", p, "KLM", klm_s,
                      static_cast<double>(klm.total_samples), klm.timed_out);
      json->AddSample("Exact", "noise", p, "Natural", nat_s,
                      static_cast<double>(nat.total_samples), nat.timed_out);
    }
  }
  std::printf(
      "\n('infeasible' counts answers whose synopsis exceeded the exact "
      "oracle's component budget; '*' marks a scheme deadline)\n");
  bench_obs.Finish();
  return 0;
}

}  // namespace
}  // namespace cqa

int main(int argc, char** argv) {
  return cqa::Run(cqa::BenchFlags::Parse(argc, argv));
}
