// Ablation (ours, checking the claim of §6.3): the paper fixes ε = 0.1
// and δ = 0.25 for every experiment "because we know that their actual
// value does not allow us to reliably differentiate the approximation
// schemes [24]". This binary sweeps the (ε, δ) grid on one fixed
// database-query pair and reports, per configuration, each scheme's
// running time and rank — the claim holds if the *ordering* of the
// schemes is invariant while absolute times scale with 1/ε².

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_flags.h"
#include "bench/harness.h"
#include "gen/noise.h"
#include "gen/tpch.h"
#include "query/parser.h"

namespace cqa {
namespace {

int Run(const BenchFlags& flags) {
  flags.PrintHeader("Ablation — (ε, δ) sweep: scheme ordering invariance");

  TpchOptions tpch;
  tpch.scale_factor = flags.scale_factor;
  tpch.seed = flags.seed;
  Dataset base = GenerateTpch(tpch);
  ConjunctiveQuery q = MustParseCq(
      *base.schema,
      "Q(OK, OD) :- orders(OK, CK, OS, TP, OD, OP, CL, SP, OC),"
      " customer(CK, CN, CA, NK, CP, CB, 'BUILDING', CC).");
  Rng noise_rng(flags.seed ^ 0xE6546B64);
  NoiseOptions noise;
  noise.p = 0.5;
  Database noisy = base.db->Clone();
  AddQueryAwareNoise(&noisy, q, noise, noise_rng);
  PreprocessResult pre = BuildSynopses(noisy, q);
  std::printf("pair: %zu answers, %zu images, balance %.3f\n\n",
              pre.NumAnswers(), pre.stats().num_distinct_images,
              pre.Balance());

  std::printf("%-6s %-6s %10s %10s %10s %10s   %s\n", "eps", "delta",
              "Natural", "KL", "KLM", "Cover", "ranking");
  std::string reference_ranking;
  bool ordering_invariant = true;
  Rng rng(flags.seed ^ 0x85EBCA6B);
  BenchObs bench_obs(flags, "bench_epsilon");
  for (double epsilon : {0.05, 0.1, 0.2, 0.3}) {
    for (double delta : {0.1, 0.25, 0.5}) {
      ApxParams params;
      params.epsilon = epsilon;
      params.delta = delta;
      char title[64];
      std::snprintf(title, sizeof(title), "EpsilonDelta[%.2f, %.2f]", epsilon,
                    delta);
      std::vector<SchemeTiming> timings =
          RunAllSchemes(pre, params, flags.timeout_seconds * 10, rng,
                        bench_obs.sinks,
                        obs::RunContext{title, "epsilon", epsilon});
      std::vector<size_t> order{0, 1, 2, 3};
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return timings[a].seconds < timings[b].seconds;
      });
      std::string ranking;
      for (size_t i : order) {
        if (!ranking.empty()) ranking += " < ";
        ranking += SchemeKindName(timings[i].scheme);
      }
      std::printf("%-6.2f %-6.2f %10.4f %10.4f %10.4f %10.4f   %s\n",
                  epsilon, delta, timings[0].seconds, timings[1].seconds,
                  timings[2].seconds, timings[3].seconds, ranking.c_str());
      // Compare only the winner across configurations, treating the two
      // symbolic schemes as one family (their order is noise, as the
      // paper notes), and only within the practically relevant precision
      // range (very loose ε pushes every scheme to millisecond-level
      // times where ordering is jitter).
      if (epsilon <= 0.2) {
        SchemeKind w = timings[order[0]].scheme;
        std::string winner = (w == SchemeKind::kKl || w == SchemeKind::kKlm)
                                 ? "KL(M)"
                                 : SchemeKindName(w);
        if (reference_ranking.empty()) {
          reference_ranking = winner;
        } else if (reference_ranking != winner) {
          ordering_invariant = false;
        }
      }
    }
  }
  std::printf(
      "\nwinner invariant across the (ε ≤ 0.2, δ) grid: %s (paper §6.3: "
      "the parameters are problem-agnostic and do not differentiate the "
      "schemes)\n",
      ordering_invariant ? "yes" : "no");
  bench_obs.Finish();
  return 0;
}

}  // namespace
}  // namespace cqa

int main(int argc, char** argv) {
  return cqa::Run(cqa::BenchFlags::Parse(argc, argv));
}
