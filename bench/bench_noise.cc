// Reproduces Figure 1 (and Appendix Figures 6-7): the noise scenarios
// Noise[balance, joins]. For each (balance q, joins j) cell it prints the
// mean running time of the four approximation schemes as the amount of
// noise grows, averaged over the SQG queries of that join level — the
// series the paper plots, at reduced scale.
//
// Expected shape (paper §7.1): for Boolean CQs (q = 0) Natural is flat
// and fastest while KL/KLM/Cover degrade with noise; for non-Boolean CQs
// Natural degrades fastest and KL(M) win.

#include <algorithm>
#include <cstdio>

#include "bench/bench_flags.h"
#include "bench/harness.h"
#include "bench/scenario.h"

namespace cqa {
namespace {

int Run(const BenchFlags& flags) {
  flags.PrintHeader("Figure 1 / Figures 6-7 — Noise scenarios");

  ScenarioGridOptions options;
  options.scale_factor = flags.scale_factor;
  options.seed = flags.seed;
  options.join_levels = {1, 3, 5};
  options.queries_per_join = flags.queries_per_level;
  options.noise_levels = flags.Levels(false, {0.2, 0.6, 1.0});
  options.balance_targets = {0.0, 0.3, 0.5};
  // Keep witness sets bounded so the four-scheme race, not the
  // evaluator, dominates the budget (see EXPERIMENTS.md on scaling).
  options.max_base_homomorphisms = 1000;
  ScenarioGrid grid = ScenarioGrid::Build(options);

  ApxParams params;
  Rng rng(flags.seed ^ 0x9E3779B9);
  BenchObs bench_obs(flags, "bench_noise");

  // Take-home bookkeeping: wins per regime.
  size_t boolean_cells = 0, boolean_natural_wins = 0;
  size_t nonboolean_cells = 0, nonboolean_klm_or_kl_wins = 0;

  for (double balance : options.balance_targets) {
    for (size_t joins : options.join_levels) {
      char title[128];
      std::snprintf(title, sizeof(title), "Noise[%.1f, %zu]", balance, joins);
      SeriesTable table("noise");
      for (const ScenarioPair* pair :
           grid.Select(joins, std::nullopt, balance)) {
        PreprocessResult pre = BuildSynopses(*pair->db, pair->query);
        obs::RunContext context{title, "noise", pair->noise};
        for (const SchemeTiming& timing :
             RunAllSchemes(pre, params, flags.timeout_seconds, rng,
                           bench_obs.sinks, context)) {
          table.Add(pair->noise, timing.scheme, timing);
        }
      }
      table.Print(title);
      for (double noise : options.noise_levels) {
        if (table.Mean(noise, SchemeKind::kNatural) < 0) continue;
        // Sub-10ms cells are jitter and all-timeout cells carry no
        // ordering information; skip both in the tally.
        double slowest = 0.0;
        for (SchemeKind kind : AllSchemeKinds()) {
          slowest = std::max(slowest, table.Mean(noise, kind));
        }
        if (slowest < 0.01 || table.AllTimedOut(noise)) continue;
        SchemeKind winner = table.Winner(noise);
        if (balance == 0.0) {
          ++boolean_cells;
          if (winner == SchemeKind::kNatural) ++boolean_natural_wins;
        } else {
          ++nonboolean_cells;
          if (winner == SchemeKind::kKlm || winner == SchemeKind::kKl) {
            ++nonboolean_klm_or_kl_wins;
          }
        }
      }
    }
  }

  std::printf("## Take-home summary (paper §7.2)\n");
  std::printf("Boolean cells won by Natural:        %zu/%zu\n",
              boolean_natural_wins, boolean_cells);
  std::printf("non-Boolean cells won by KL or KLM:  %zu/%zu\n",
              nonboolean_klm_or_kl_wins, nonboolean_cells);
  bench_obs.Finish();
  return 0;
}

}  // namespace
}  // namespace cqa

int main(int argc, char** argv) {
  return cqa::Run(cqa::BenchFlags::Parse(argc, argv));
}
