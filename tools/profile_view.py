#!/usr/bin/env python3
"""Renderer for the profiles cqabench's sampling profiler emits.

Reads a pprof profile.proto — gzipped (what /debug/pprof/profile and
--obs_profile write) or raw — or an already-collapsed stack file, using
nothing but the Python standard library: the protobuf wire format is
decoded with a hand-rolled varint scanner, matching the hand-rolled
encoder on the C++ side (src/obs/profiler.cc).

Default output is a top-N table ranked by self samples, with cumulative
counts alongside (a frame's cumulative count includes every sample where
it appears anywhere on the stack; recursion is counted once per sample):

    python3 tools/profile_view.py profile.pb.gz
    curl -s 'localhost:7412/debug/pprof/profile?seconds=5' | \
        python3 tools/profile_view.py -

`--fold` prints collapsed "frame;frame;... count" lines instead —
root-first, profile-region tags as leading "[serve.sample]" frames —
ready for flamegraph.pl or speedscope. `--filter=SUBSTR` keeps only
stacks containing the substring; `--share=SUBSTR` prints (and returns in
the exit status) the fraction of samples whose stack mentions it, which
is what CI and tools/loadgen.py --pprof use to assert a phase dominates:

    python3 tools/profile_view.py --share=serve.sample --min-share=0.8 p.gz

Exit status: 0 on success, 1 on a --min-share breach, 2 on bad input.
"""

from __future__ import annotations

import argparse
import gzip
import sys

# ---------------------------------------------------------------------------
# Protobuf wire scanning (varints and length-delimited fields only — the
# profiler's encoder emits nothing else).
# ---------------------------------------------------------------------------


def read_varint(buf: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while pos < len(buf):
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            break
    raise ValueError("truncated varint")


def iter_fields(buf: bytes):
    """Yields (field_number, wire_type, value) where value is an int for
    varint fields and a bytes slice for length-delimited ones."""
    pos = 0
    while pos < len(buf):
        tag, pos = read_varint(buf, pos)
        field, wire = tag >> 3, tag & 7
        if wire == 0:
            value, pos = read_varint(buf, pos)
            yield field, wire, value
        elif wire == 2:
            length, pos = read_varint(buf, pos)
            if pos + length > len(buf):
                raise ValueError("truncated length-delimited field")
            yield field, wire, buf[pos:pos + length]
            pos += length
        else:
            raise ValueError(f"unsupported wire type {wire}")


def packed_varints(buf: bytes) -> list[int]:
    out, pos = [], 0
    while pos < len(buf):
        value, pos = read_varint(buf, pos)
        out.append(value)
    return out


# ---------------------------------------------------------------------------
# profile.proto -> folded stacks.
# ---------------------------------------------------------------------------


def decode_profile(data: bytes) -> list[tuple[list[str], int]]:
    """pprof bytes -> [(root-first frame names, sample count)]."""
    strings: list[str] = []
    functions: dict[int, int] = {}      # function id -> name string index
    locations: dict[int, list[int]] = {}  # location id -> function ids
    samples: list[tuple[list[int], int]] = []  # (leaf-first loc ids, count)

    for field, wire, value in iter_fields(data):
        if field == 6 and wire == 2:
            strings.append(value.decode("utf-8", "replace"))
        elif field == 2 and wire == 2:  # Sample
            loc_ids: list[int] = []
            count = 0
            for sfield, swire, svalue in iter_fields(value):
                if sfield == 1:
                    loc_ids.extend(packed_varints(svalue)
                                   if swire == 2 else [svalue])
                elif sfield == 2:
                    values = (packed_varints(svalue)
                              if swire == 2 else [svalue])
                    if values:
                        count = values[0]
            samples.append((loc_ids, count))
        elif field == 4 and wire == 2:  # Location
            loc_id = 0
            func_ids: list[int] = []
            for lfield, lwire, lvalue in iter_fields(value):
                if lfield == 1:
                    loc_id = lvalue
                elif lfield == 4 and lwire == 2:  # Line
                    for nfield, _, nvalue in iter_fields(lvalue):
                        if nfield == 1:
                            func_ids.append(nvalue)
            locations[loc_id] = func_ids
        elif field == 5 and wire == 2:  # Function
            func_id = name_idx = 0
            for ffield, _, fvalue in iter_fields(value):
                if ffield == 1:
                    func_id = fvalue
                elif ffield == 2:
                    name_idx = fvalue
            functions[func_id] = name_idx

    def location_name(loc_id: int) -> str:
        for func_id in locations.get(loc_id, []):
            idx = functions.get(func_id)
            if idx is not None and 0 <= idx < len(strings):
                return strings[idx]
        return f"0x{loc_id:x}"

    folded = []
    for loc_ids, count in samples:
        if count <= 0:
            continue
        # pprof stacks are leaf-first; folded output is root-first.
        frames = [location_name(loc) for loc in reversed(loc_ids)]
        folded.append((frames, count))
    return folded


def parse_folded(text: str) -> list[tuple[list[str], int]]:
    out = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, count = line.rpartition(" ")
        if not stack or not count.isdigit():
            raise ValueError(f"not a folded stack line: {line!r}")
        out.append((stack.split(";"), int(count)))
    return out


def load(path: str) -> list[tuple[list[str], int]]:
    data = sys.stdin.buffer.read() if path == "-" else open(path, "rb").read()
    if data[:2] == b"\x1f\x8b":
        data = gzip.decompress(data)
    # Heuristic: folded input is printable text with " <count>" line ends;
    # proto input starts with a field tag byte and is generally binary.
    try:
        return parse_folded(data.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return decode_profile(data)


# ---------------------------------------------------------------------------
# Reports.
# ---------------------------------------------------------------------------


def print_top(folded: list[tuple[list[str], int]], top_n: int) -> None:
    total = sum(count for _, count in folded)
    self_counts: dict[str, int] = {}
    cum_counts: dict[str, int] = {}
    for frames, count in folded:
        if not frames:
            continue
        leaf = frames[-1]
        self_counts[leaf] = self_counts.get(leaf, 0) + count
        for frame in set(frames):  # Recursion counts once per sample.
            cum_counts[frame] = cum_counts.get(frame, 0) + count
    print(f"total samples: {total} across {len(folded)} distinct stacks")
    print(f"{'self':>8} {'self%':>7} {'cum':>8} {'cum%':>7}  frame")
    ranked = sorted(self_counts.items(), key=lambda kv: (-kv[1], kv[0]))
    for frame, self_count in ranked[:top_n]:
        cum = cum_counts[frame]
        print(f"{self_count:8d} {self_count / total:7.1%} "
              f"{cum:8d} {cum / total:7.1%}  {frame}")


def share_of(folded: list[tuple[list[str], int]], needle: str) -> float:
    total = matched = 0
    for frames, count in folded:
        total += count
        if any(needle in frame for frame in frames):
            matched += count
    return matched / total if total else 0.0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("input",
                        help="profile: .pb.gz / raw proto / folded text; "
                             "'-' reads stdin")
    parser.add_argument("--top", type=int, default=20,
                        help="rows in the self/cum table (default 20)")
    parser.add_argument("--fold", action="store_true",
                        help="print collapsed stacks instead of the table")
    parser.add_argument("--filter", default="",
                        help="keep only stacks containing this substring")
    parser.add_argument("--share", default="",
                        help="report the fraction of samples whose stack "
                             "contains this substring")
    parser.add_argument("--min-share", type=float, default=-1.0,
                        help="with --share: exit 1 when the fraction is "
                             "below this bound")
    args = parser.parse_args()

    try:
        folded = load(args.input)
    except (OSError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    if not folded:
        print("error: no samples in profile", file=sys.stderr)
        return 2
    if args.filter:
        folded = [(frames, count) for frames, count in folded
                  if any(args.filter in frame for frame in frames)]
        if not folded:
            print(f"error: no stacks match filter {args.filter!r}",
                  file=sys.stderr)
            return 2

    if args.fold:
        for frames, count in folded:
            print(";".join(frames), count)
    else:
        print_top(folded, args.top)

    if args.share:
        fraction = share_of(folded, args.share)
        print(f"share[{args.share}]: {fraction:.1%}")
        if 0.0 <= args.min_share and fraction < args.min_share:
            print(f"FAIL: share {fraction:.1%} below required "
                  f"{args.min_share:.1%}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
