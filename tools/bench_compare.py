#!/usr/bin/env python3
"""Diff two BENCH_*.json files and flag perf regressions beyond noise.

Usage:
    python3 tools/bench_compare.py BASELINE.json CURRENT.json
        [--threshold=0.15] [--min-seconds=0.001]
        [--estimate-tolerance=0.02] [--warn-only] [--markdown=FILE]

Both inputs are the versioned JSON files the bench binaries emit via
--bench_json= (schema: src/obs/bench_json.h).  Cells are joined on
(scenario, x, series) and tested on two axes:

Correctness (hard gate -- --warn-only does NOT waive it):
  * timeout-count increases, and
  * estimate drift:  |cur_est - base_est| beyond
        estimate-tolerance + 3 * (base_stddev + cur_stddev)
    -- a perf "win" that moves the reported estimates is a correctness
    bug, not a speedup, so these always exit 1.

Throughput (soft-gateable with --warn-only):
    regression  iff  current_mean > baseline_mean * (1 + threshold)
                 and current_mean - baseline_mean > 2 * baseline_stddev
                 and baseline_mean >= min-seconds

The second clause keeps one-off jitter on repeated-trial cells from
firing the gate; the third ignores sub-millisecond cells whose timer
resolution dominates.

Output: a markdown delta table (stdout, and --markdown=FILE if given)
and a summary line.  Exit status is 1 when a correctness cell failed,
or when wall-time regressions were found and --warn-only is absent
(missing/extra cells and improvements never fail the gate).
"""

from __future__ import annotations

import argparse
import json
import sys

SUPPORTED_VERSION = 1


def load(path: str) -> dict:
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    version = data.get("bench_json_version")
    if version != SUPPORTED_VERSION:
        sys.exit(
            f"{path}: bench_json_version {version!r} is not supported "
            f"(expected {SUPPORTED_VERSION})"
        )
    return data


def cells(data: dict) -> dict[tuple[str, float, str], dict]:
    out = {}
    for r in data.get("results", []):
        out[(r["scenario"], float(r["x"]), r["series"])] = r
    return out


def fmt_key(key: tuple[str, float, str]) -> str:
    scenario, x, series = key
    return f"{scenario}[{x:g}] {series}"


def fmt_delta(base: float, cur: float) -> str:
    if base <= 0:
        return "n/a"
    return f"{(cur - base) / base * 100.0:+.1f}%"


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Compare two BENCH_*.json files for perf regressions."
    )
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("current", help="current BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="relative wall-time slowdown that counts as a regression "
        "(default 0.15 = 15%%)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.001,
        help="ignore cells whose baseline mean is below this (timer noise)",
    )
    parser.add_argument(
        "--estimate-tolerance",
        type=float,
        default=0.02,
        help="absolute estimate drift allowed on top of the 3-sigma noise "
        "band (correctness cells; never soft-gated)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report wall-time regressions but exit 0 (CI soft gate for "
        "throughput cells only; estimate/timeout failures still exit 1)",
    )
    parser.add_argument(
        "--markdown", default="", help="also write the delta table here"
    )
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)
    if baseline.get("name") != current.get("name"):
        print(
            f"note: comparing different benchmarks "
            f"({baseline.get('name')!r} vs {current.get('name')!r})",
            file=sys.stderr,
        )

    base_cells = cells(baseline)
    cur_cells = cells(current)
    shared = sorted(set(base_cells) & set(cur_cells))
    missing = sorted(set(base_cells) - set(cur_cells))
    extra = sorted(set(cur_cells) - set(base_cells))

    lines = [
        f"## bench_compare: {current.get('name', '?')} "
        f"({baseline.get('git_sha', '?')} -> {current.get('git_sha', '?')})",
        "",
        "| cell | base wall s | cur wall s | delta | samples delta | flag |",
        "|---|---|---|---|---|---|",
    ]
    regressions: list[str] = []       # Wall-time: soft-gateable.
    hard_failures: list[str] = []     # Correctness: never waived.
    improvements = 0
    for key in shared:
        b, c = base_cells[key], cur_cells[key]
        b_wall = b["wall_seconds"]["mean"]
        c_wall = c["wall_seconds"]["mean"]
        b_std = b["wall_seconds"]["stddev"]
        flag = ""
        b_est = b.get("estimate", {})
        c_est = c.get("estimate", {})
        est_band = args.estimate_tolerance + 3.0 * (
            b_est.get("stddev", 0.0) + c_est.get("stddev", 0.0)
        )
        if c.get("timeouts", 0) > b.get("timeouts", 0):
            flag = "FAIL (timeouts)"
        elif (
            "mean" in b_est
            and "mean" in c_est
            and abs(c_est["mean"] - b_est["mean"]) > est_band
        ):
            flag = "FAIL (estimate drift)"
        elif (
            b_wall >= args.min_seconds
            and c_wall > b_wall * (1.0 + args.threshold)
            and c_wall - b_wall > 2.0 * b_std
        ):
            flag = "REGRESSION"
        elif b_wall >= args.min_seconds and c_wall < b_wall * (
            1.0 - args.threshold
        ):
            flag = "improved"
            improvements += 1
        if flag.startswith("FAIL"):
            hard_failures.append(f"{fmt_key(key)}: {flag.lower()}")
        elif flag.startswith("REGRESSION"):
            regressions.append(f"{fmt_key(key)}: {flag.lower()}")
        lines.append(
            f"| {fmt_key(key)} | {b_wall:.6f} | {c_wall:.6f} "
            f"| {fmt_delta(b_wall, c_wall)} "
            f"| {fmt_delta(b.get('samples', {}).get('mean', 0.0), c.get('samples', {}).get('mean', 0.0))} "
            f"| {flag} |"
        )
    for key in missing:
        lines.append(f"| {fmt_key(key)} | — | — | — | — | missing in current |")
    for key in extra:
        lines.append(f"| {fmt_key(key)} | — | — | — | — | new cell |")
    lines.append("")
    lines.append(
        f"{len(shared)} shared cells, {len(hard_failures)} correctness "
        f"failure(s), {len(regressions)} wall-time regression(s), "
        f"{improvements} improvement(s), {len(missing)} missing, "
        f"{len(extra)} new"
    )

    table = "\n".join(lines)
    print(table)
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as f:
            f.write(table + "\n")

    status = 0
    if hard_failures:
        print("", file=sys.stderr)
        for r in hard_failures:
            print(f"correctness failure: {r}", file=sys.stderr)
        status = 1
    if regressions:
        print("", file=sys.stderr)
        for r in regressions:
            print(f"regression: {r}", file=sys.stderr)
        if args.warn_only:
            print(
                "(--warn-only: wall-time regressions not failing the gate)",
                file=sys.stderr,
            )
        else:
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
