#!/usr/bin/env python3
"""Load generator for cqad, the persistent CQA query service.

Speaks the wire protocol from docs/protocol.md (4-byte big-endian length
prefix + one JSON object per frame) with nothing but the Python standard
library, drives a configurable number of concurrent connections at the
daemon, and reports:

  * client-side latency quantiles (p50/p95/p99) measured per request,
  * the server's own view, read back through the `stats` op: the
    serve.request_micros histogram quantiles plus synopsis-cache and
    admission counters, so client- and server-side numbers can be
    compared in one run.

Every query carries a wire trace context ("trace": {"id": "loadgen-N"}),
so server-side spans and access-log lines join back to client requests.
Observability cross-checks, all optional:

  * --metrics-port=N (with --spawn) starts cqad's Prometheus listener
    and --scrape pulls /metrics + /healthz after the run, diffing the
    client p95 against the scraped cqa_serve_request_micros histogram;
  * --access-log=FILE (with --spawn) passes --obs_access_log and then
    validates the JSONL schema and that per-phase micros sum to within
    10% of each logged total;
  * --trace-export=FILE (with --spawn) passes --obs_trace and verifies
    the exported spans carry the loadgen trace ids verbatim;
  * --pprof (needs --metrics-port) pulls /debug/pprof/profile while the
    load runs and asserts the serve.sample phase dominates the CPU
    samples — the sampling profiler cross-checked against phase timing.

Typical session against an already-running daemon:

    python3 tools/loadgen.py --port=7411 --data=/tmp/tpch \
        --requests=200 --concurrency=16

Self-contained session (spawns the daemon, generates a dataset, drives
load, then SIGTERMs the daemon and verifies the graceful drain):

    python3 tools/loadgen.py --spawn=build/serve/cqad \
        --gen=build/examples/cqa_cli --sf=0.001 \
        --requests=200 --concurrency=16

By default requests rotate through all four schemes (Natural, KL, KLM,
Cover) and a small set of seeds, so the daemon's synopsis cache is
exercised with both hits and misses; pass --scheme to pin one.

Exit status: 0 on success; 1 if any request failed with an unexpected
error (503-shed responses are expected under deliberate overload and are
counted, not failed, when --allow-shed is given) or the drain check
fails.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import shutil
import signal
import socket
import struct
import subprocess
import sys
import tempfile
import threading
import time

DEFAULT_QUERY = (
    "Q(NN) :- customer(CK, CN, CA, NK, CP, CB, CS, CC), "
    "nation(NK, NN, RK, NC)."
)
SCHEMES = ["Natural", "KL", "KLM", "Cover"]
MAX_FRAME = 8 * 1024 * 1024


# ---------------------------------------------------------------------------
# Wire protocol: length-prefixed JSON frames (docs/protocol.md).
# ---------------------------------------------------------------------------

def send_frame(sock: socket.socket, payload: dict) -> None:
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    sock.sendall(struct.pack(">I", len(body)) + body)


def recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n > 0:
        chunk = sock.recv(n)
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict:
    (length,) = struct.unpack(">I", recv_exact(sock, 4))
    if length == 0 or length > MAX_FRAME:
        raise ConnectionError(f"bad frame length {length}")
    return json.loads(recv_exact(sock, length).decode("utf-8"))


def call(host: str, port: int, payload: dict, timeout: float = 60.0) -> dict:
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        send_frame(sock, payload)
        return recv_frame(sock)


# ---------------------------------------------------------------------------
# Worker pool.
# ---------------------------------------------------------------------------

class Stats:
    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.latencies_s: list[float] = []
        self.by_status: dict[str, int] = {}
        self.cache_hits = 0
        self.shed = 0
        self.failures: list[str] = []

    def record(self, elapsed: float, reply: dict) -> None:
        status = reply.get("status", "?")
        code = int(reply.get("code", 0))
        with self.lock:
            self.latencies_s.append(elapsed)
            key = status if status == "ok" else f"error {code}"
            self.by_status[key] = self.by_status.get(key, 0) + 1
            if reply.get("cache") == "hit":
                self.cache_hits += 1
            if code == 503:
                self.shed += 1

    def fail(self, message: str) -> None:
        with self.lock:
            self.failures.append(message)


def run_worker(args: argparse.Namespace, indices: list[int],
               stats: Stats) -> None:
    """One persistent connection issuing its slice of the request stream."""
    try:
        sock = socket.create_connection((args.host, args.port), timeout=60.0)
    except OSError as err:
        stats.fail(f"connect: {err}")
        return
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    try:
        for i in indices:
            payload = {
                "v": 1,
                "op": "query",
                "id": f"loadgen-{i}",
                "schema": args.schema,
                "data": args.data,
                "query": args.query,
                "scheme": args.scheme or SCHEMES[i % len(SCHEMES)],
                "epsilon": args.epsilon,
                "delta": args.delta,
                "seed": args.seed_base + (i // len(SCHEMES)) % args.seeds,
                "trace": {"id": f"loadgen-{i}"},
            }
            if args.deadline > 0:
                payload["deadline_s"] = args.deadline
            start = time.monotonic()
            try:
                send_frame(sock, payload)
                reply = recv_frame(sock)
            except (OSError, ConnectionError, ValueError) as err:
                stats.fail(f"request {i}: {err}")
                return
            stats.record(time.monotonic() - start, reply)
            status = reply.get("status")
            code = int(reply.get("code", 0))
            if status != "ok" and not (code == 503 and args.allow_shed):
                stats.fail(
                    f"request {i}: error {code}: {reply.get('error', '')}")
    finally:
        sock.close()


# ---------------------------------------------------------------------------
# Reporting.
# ---------------------------------------------------------------------------

def quantile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return math.nan
    pos = q * (len(sorted_values) - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


def print_client_report(stats: Stats, wall_s: float) -> None:
    lat = sorted(stats.latencies_s)
    print(f"requests:      {len(lat)} in {wall_s:.2f}s "
          f"({len(lat) / wall_s:.1f} req/s)" if wall_s > 0 else
          f"requests:      {len(lat)}")
    for key in sorted(stats.by_status):
        print(f"  {key}: {stats.by_status[key]}")
    print(f"  cache hits: {stats.cache_hits}")
    if lat:
        print("client-side latency:")
        for name, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99),
                        ("p99.9", 0.999)):
            print(f"  {name}: {quantile(lat, q) * 1e3:9.2f} ms")
        print(f"  max: {lat[-1] * 1e3:9.2f} ms")


def print_server_report(host: str, port: int) -> None:
    try:
        reply = call(host, port, {"v": 1, "op": "stats"})
    except (OSError, ConnectionError, ValueError) as err:
        print(f"stats op failed: {err}", file=sys.stderr)
        return
    server = reply.get("server", {})
    metrics = reply.get("metrics", {})
    counters = metrics.get("counters", {})
    histograms = metrics.get("histograms", {})
    print("server-side view (stats op):")
    for key in ("requests_total", "admission_shed", "cache_hits",
                "cache_misses", "cache_evictions", "cache_entries"):
        if key in server:
            print(f"  {key}: {server[key]}")
    micros = histograms.get("serve.request_micros")
    if micros:
        print("  serve.request_micros histogram:")
        for name in ("p50", "p95", "p99", "p999"):
            if name in micros:
                print(f"    {name}: {float(micros[name]) / 1e3:9.2f} ms")
        print(f"    count: {micros['count']}, max: "
              f"{float(micros['max']) / 1e3:.2f} ms")
    builds = counters.get("preprocess.builds")
    if builds is not None:
        print(f"  preprocess.builds: {builds}")


# ---------------------------------------------------------------------------
# Prometheus scrape + offline artifact checks.
# ---------------------------------------------------------------------------

def http_get_bytes(host: str, port: int, path: str,
                   timeout: float = 10.0) -> tuple[int, bytes]:
    """Minimal HTTP GET (stdlib http.client) returning (status, body)."""
    import http.client
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


def http_get(host: str, port: int, path: str,
             timeout: float = 10.0) -> tuple[int, str]:
    status, body = http_get_bytes(host, port, path, timeout)
    return status, body.decode("utf-8")


def parse_prometheus(text: str) -> dict[str, float]:
    """Exposition text -> {sample name with labels: value}. Raises on any
    line that is neither a comment nor 'name[{labels}] value'."""
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        if not name:
            raise ValueError(f"unparseable exposition line: {line!r}")
        samples[name] = float(value)
    return samples


def histogram_quantile(samples: dict[str, float], name: str,
                       q: float) -> float:
    """q-quantile upper bound (seconds-free, raw unit) from _bucket
    samples; nan when the histogram is absent or empty."""
    buckets = []
    prefix = f'{name}_bucket{{le="'
    for key, value in samples.items():
        if key.startswith(prefix):
            le = key[len(prefix):-2]
            buckets.append((math.inf if le == "+Inf" else float(le), value))
    buckets.sort()
    count = samples.get(f"{name}_count", 0.0)
    if not buckets or count <= 0:
        return math.nan
    target = q * count
    for le, cumulative in buckets:
        if cumulative >= target:
            return le
    return buckets[-1][0]


def scrape_and_compare(args: argparse.Namespace, stats: Stats) -> bool:
    status, health = http_get(args.host, args.metrics_port, "/healthz")
    print(f"healthz: {status} {health.strip()!r}")
    if status != 200:
        print("FAIL: /healthz not 200 while serving", file=sys.stderr)
        return False
    status, body = http_get(args.host, args.metrics_port, "/metrics")
    if status != 200:
        print(f"FAIL: /metrics returned {status}", file=sys.stderr)
        return False
    try:
        samples = parse_prometheus(body)
    except ValueError as err:
        print(f"FAIL: {err}", file=sys.stderr)
        return False
    count = samples.get("cqa_serve_request_micros_count", 0.0)
    print(f"scraped /metrics: {len(samples)} samples, "
          f"cqa_serve_request_micros_count={count:.0f}")
    if count < len(stats.latencies_s):
        print("FAIL: scraped request histogram count below client request "
              f"count ({count:.0f} < {len(stats.latencies_s)})",
              file=sys.stderr)
        return False
    client_p95_us = quantile(sorted(stats.latencies_s), 0.95) * 1e6
    server_p95_us = histogram_quantile(samples, "cqa_serve_request_micros",
                                       0.95)
    if not math.isnan(server_p95_us):
        print(f"p95 compare: client {client_p95_us / 1e3:.2f} ms vs scraped "
              f"server histogram upper bound {server_p95_us / 1e3:.2f} ms")
        # Power-of-two buckets report an upper bound: the server value may
        # be up to 2x above the true latency, and the client adds RTT on
        # top of the server's view — so only order-of-magnitude agreement
        # is checkable. A 'bound below client/4' breach means the scrape
        # and the run measured different things.
        if server_p95_us * 4 < client_p95_us:
            print("FAIL: scraped server p95 implausibly below client p95",
                  file=sys.stderr)
            return False
    return True


def pprof_worker(args: argparse.Namespace, result: dict) -> None:
    """Fetches /debug/pprof/profile while the load runs (own thread)."""
    try:
        status, body = http_get_bytes(
            args.host, args.metrics_port,
            f"/debug/pprof/profile?seconds={args.pprof_seconds}",
            timeout=args.pprof_seconds + 30.0)
        result["status"] = status
        result["body"] = body
    except OSError as err:
        result["error"] = str(err)


def check_pprof(args: argparse.Namespace, result: dict) -> bool:
    """Decodes the profile collected under load and asserts the sampler
    phase ([serve.sample] region frames) dominates the samples — the
    profiler agreeing with what the phase timings already say the
    daemon spends its CPU on."""
    import gzip

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    import profile_view

    if "error" in result:
        print(f"FAIL: pprof fetch: {result['error']}", file=sys.stderr)
        return False
    status = result.get("status")
    if status == 501:
        print("pprof check skipped: this build cannot profile "
              "(CQABENCH_NO_OBS or sanitizers; endpoint answered 501)")
        return True
    if status != 200:
        print(f"FAIL: /debug/pprof/profile returned {status}",
              file=sys.stderr)
        return False
    try:
        folded = profile_view.decode_profile(gzip.decompress(result["body"]))
    except (OSError, ValueError) as err:
        print(f"FAIL: profile did not decode: {err}", file=sys.stderr)
        return False
    total = sum(count for _, count in folded)
    if total == 0:
        print("FAIL: profile holds zero samples under load", file=sys.stderr)
        return False
    share = profile_view.share_of(folded, "serve.sample")
    print(f"pprof under load: {total} samples, "
          f"serve.sample share {share:.1%} "
          f"(required ≥ {args.pprof_min_sample_share:.1%})")
    if share < args.pprof_min_sample_share:
        print(f"FAIL: serve.sample share {share:.1%} below "
              f"{args.pprof_min_sample_share:.1%} — the profiler and the "
              f"phase timings disagree about where CPU goes",
              file=sys.stderr)
        return False
    return True


def check_access_log(path: str, requests: int) -> bool:
    """Validates the JSONL access log: parseable lines, ok-query phase
    sums within 10% of the logged total, trace ids present."""
    lines = 0
    checked = 0
    traced = 0
    worst = 0.0
    phases = ("queue_wait_micros", "cache_micros", "preprocess_micros",
              "sample_micros", "encode_micros")
    with open(path, "r", encoding="utf-8") as f:
        for raw in f:
            if not raw.strip():
                continue
            entry = json.loads(raw)
            lines += 1
            if "op" not in entry or "code" not in entry:
                print(f"FAIL: access-log line missing op/code: {raw!r}",
                      file=sys.stderr)
                return False
            if entry.get("trace_id", "").startswith("loadgen-"):
                traced += 1
            if entry["op"] != "query" or entry["code"] != 0:
                continue
            total = entry["total_micros"]
            phase_sum = sum(entry[p] for p in phases)
            if total >= 1000:
                checked += 1
                gap = abs(total - phase_sum) / total
                worst = max(worst, gap)
                if gap > 0.10:
                    print(f"FAIL: phase sum {phase_sum} vs total {total} "
                          f"({gap:.1%} apart): {raw!r}", file=sys.stderr)
                    return False
    print(f"access log: {lines} lines, {traced} with loadgen trace ids, "
          f"{checked} phase-sum checks passed (worst gap {worst:.1%})")
    if lines == 0:
        print("FAIL: access log is empty", file=sys.stderr)
        return False
    return True


def check_trace_export(path: str, requests: int) -> bool:
    """Verifies the exported span JSONL carries loadgen trace ids."""
    span_count = 0
    traced_ids = set()
    with open(path, "r", encoding="utf-8") as f:
        for raw in f:
            if not raw.strip():
                continue
            record = json.loads(raw)
            if record.get("trace_meta"):
                print(f"trace export: dropped_spans="
                      f"{record.get('dropped_spans')}, buffered_spans="
                      f"{record.get('buffered_spans')}")
                continue
            span_count += 1
            trace_id = record.get("trace_id", "")
            if trace_id.startswith("loadgen-"):
                traced_ids.add(trace_id)
    print(f"trace export: {span_count} spans, {len(traced_ids)} distinct "
          f"loadgen trace ids")
    if not traced_ids:
        print("FAIL: no loadgen trace ids in exported spans", file=sys.stderr)
        return False
    return True


# ---------------------------------------------------------------------------
# Optional daemon / dataset management.
# ---------------------------------------------------------------------------

def spawn_cqad(args: argparse.Namespace) -> subprocess.Popen:
    cmd = [args.spawn, f"--host={args.host}", f"--port={args.port}",
           f"--workers={args.workers}"]
    if args.metrics_port >= 0:
        cmd.append(f"--metrics_port={args.metrics_port}")
    if args.access_log:
        cmd.append(f"--obs_access_log={args.access_log}")
    if args.trace_export:
        cmd.append(f"--obs_trace={args.trace_export}")
    if args.cqad_flag:
        cmd.extend(args.cqad_flag)
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)
    assert proc.stdout is not None
    line = proc.stdout.readline()
    # "cqad listening on HOST:PORT" — the daemon's readiness line.
    if "cqad listening on" not in line:
        proc.kill()
        raise RuntimeError(f"unexpected cqad output: {line!r}")
    args.port = int(line.rsplit(":", 1)[1])
    if args.metrics_port >= 0:
        line = proc.stdout.readline()
        # "cqad metrics on HOST:PORT" — resolves --metrics_port=0.
        if "cqad metrics on" not in line:
            proc.kill()
            raise RuntimeError(f"expected metrics line, got: {line!r}")
        args.metrics_port = int(line.rsplit(":", 1)[1])
    print(f"spawned cqad pid {proc.pid} on {args.host}:{args.port}")
    return proc


def drain_cqad(proc: subprocess.Popen, timeout: float) -> bool:
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        print("cqad did not drain before timeout", file=sys.stderr)
        return False
    assert proc.stdout is not None
    tail = proc.stdout.read()
    if "cqad drained cleanly" not in tail:
        print(f"cqad exited without drain line; tail: {tail!r}",
              file=sys.stderr)
        return False
    print("cqad drained cleanly on SIGTERM")
    return proc.returncode == 0


def generate_dataset(args: argparse.Namespace) -> str:
    out = tempfile.mkdtemp(prefix="cqa_loadgen_")
    cmd = [args.gen, "gen", f"--schema={args.schema}", f"--sf={args.sf}",
           f"--out={out}", "--seed=17"]
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    return out


# ---------------------------------------------------------------------------
# Main.
# ---------------------------------------------------------------------------

def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="cqad port (required unless --spawn)")
    parser.add_argument("--data", default="",
                        help=".tbl directory (required unless --gen)")
    parser.add_argument("--query", default=DEFAULT_QUERY)
    parser.add_argument("--schema", default="tpch",
                        choices=["tpch", "tpcds"])
    parser.add_argument("--scheme", default="",
                        help="pin one scheme; default rotates all four")
    parser.add_argument("--epsilon", type=float, default=0.1)
    parser.add_argument("--delta", type=float, default=0.25)
    parser.add_argument("--deadline", type=float, default=0.0,
                        help="per-request deadline seconds (0 = server default)")
    parser.add_argument("--requests", type=int, default=100)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--seeds", type=int, default=2,
                        help="distinct seeds to rotate through")
    parser.add_argument("--seed-base", type=int, default=1)
    parser.add_argument("--allow-shed", action="store_true",
                        help="treat 503 responses as expected, not failures")
    parser.add_argument("--spawn", default="",
                        help="path to cqad: spawn it, drive it, SIGTERM it")
    parser.add_argument("--workers", type=int, default=8,
                        help="worker threads for a spawned cqad")
    parser.add_argument("--cqad-flag", action="append", default=[],
                        help="extra flag passed through to a spawned cqad "
                             "(repeatable), e.g. --cqad-flag=--max_queue=4")
    parser.add_argument("--metrics-port", type=int, default=-1,
                        help="with --spawn: start cqad's /metrics listener "
                             "on this port (0 = ephemeral); without --spawn: "
                             "the running daemon's metrics port")
    parser.add_argument("--pprof", action="store_true",
                        help="while the load runs, pull /debug/pprof/profile "
                             "and assert the serve.sample phase dominates "
                             "the CPU samples (needs --metrics-port)")
    parser.add_argument("--pprof-seconds", type=float, default=3.0,
                        help="profile collection window for --pprof")
    parser.add_argument("--pprof-min-sample-share", type=float, default=0.8,
                        help="minimum fraction of samples that must carry "
                             "the serve.sample region for --pprof to pass")
    parser.add_argument("--scrape", action="store_true",
                        help="after the run, scrape /metrics + /healthz and "
                             "diff client p95 vs the server histogram "
                             "(needs --metrics-port)")
    parser.add_argument("--access-log", default="",
                        help="with --spawn: pass --obs_access_log=FILE and "
                             "validate the JSONL (phase sums, trace ids) "
                             "after the drain")
    parser.add_argument("--trace-export", default="",
                        help="with --spawn: pass --obs_trace=FILE and verify "
                             "loadgen trace ids appear in exported spans")
    parser.add_argument("--gen", default="",
                        help="path to cqa_cli: generate a throwaway dataset")
    parser.add_argument("--sf", type=float, default=0.001,
                        help="scale factor for --gen")
    return parser.parse_args()


def main() -> int:
    args = parse_args()
    generated_dir = ""
    proc = None
    ok = True
    try:
        if args.gen:
            generated_dir = generate_dataset(args)
            args.data = generated_dir
            print(f"generated {args.schema} sf={args.sf} at {args.data}")
        if not args.data:
            print("error: --data (or --gen) is required", file=sys.stderr)
            return 2
        if args.spawn:
            proc = spawn_cqad(args)
        elif args.port == 0:
            print("error: --port (or --spawn) is required", file=sys.stderr)
            return 2

        # Deal request indices round-robin so every worker sees the same
        # scheme/seed mix and cache misses are front-loaded evenly.
        slices: list[list[int]] = [[] for _ in range(args.concurrency)]
        for i in range(args.requests):
            slices[i % args.concurrency].append(i)
        stats = Stats()
        pprof_result: dict = {}
        pprof_thread = None
        if args.pprof:
            if args.metrics_port < 0:
                print("error: --pprof needs --metrics-port", file=sys.stderr)
                return 2
        start = time.monotonic()
        threads = [
            threading.Thread(target=run_worker, args=(args, s, stats))
            for s in slices if s
        ]
        for t in threads:
            t.start()
        if args.pprof:
            # Collect while the workers saturate the daemon (per-thread
            # CPU-time timers mean post-load idle adds ~no samples).
            pprof_thread = threading.Thread(target=pprof_worker,
                                            args=(args, pprof_result))
            pprof_thread.start()
        for t in threads:
            t.join()
        wall = time.monotonic() - start
        if pprof_thread is not None:
            pprof_thread.join()

        print_client_report(stats, wall)
        print_server_report(args.host, args.port)
        if args.scrape:
            if args.metrics_port < 0:
                print("error: --scrape needs --metrics-port",
                      file=sys.stderr)
                ok = False
            elif not scrape_and_compare(args, stats):
                ok = False
        if args.pprof and not check_pprof(args, pprof_result):
            ok = False
        if stats.failures:
            ok = False
            for f in stats.failures[:10]:
                print(f"FAIL: {f}", file=sys.stderr)
            if len(stats.failures) > 10:
                print(f"... and {len(stats.failures) - 10} more",
                      file=sys.stderr)
    finally:
        if proc is not None:
            if not drain_cqad(proc, timeout=30.0):
                ok = False
        # The access log is written live but the trace export lands at
        # drain; check both once the daemon is down and the files are
        # final (they only exist when the run got as far as spawning).
        if args.access_log and os.path.exists(args.access_log):
            if not check_access_log(args.access_log, args.requests):
                ok = False
        if args.trace_export and os.path.exists(args.trace_export):
            if not check_trace_export(args.trace_export, args.requests):
                ok = False
        if generated_dir:
            shutil.rmtree(generated_dir, ignore_errors=True)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
