#!/usr/bin/env python3
"""Load generator for cqad, the persistent CQA query service.

Speaks the wire protocol from docs/protocol.md (4-byte big-endian length
prefix + one payload per frame, v1 JSON or v2 binary via --codec) with
nothing but the Python standard library. A single-threaded selectors
engine drives a configurable number of concurrent connections — scaling
to thousands — each keeping up to --pipeline requests in flight
(responses match requests by client-assigned id and may arrive out of
order). It reports:

  * client-side latency quantiles (p50/p95/p99) measured per request,
  * the server's own view, read back through the `stats` op: the
    serve.request_micros histogram quantiles plus synopsis-cache and
    admission counters, so client- and server-side numbers can be
    compared in one run.

Every query carries a wire trace context ("trace": {"id": "loadgen-N"}),
so server-side spans and access-log lines join back to client requests.
Observability cross-checks, all optional:

  * --metrics-port=N (with --spawn) starts cqad's Prometheus listener
    and --scrape pulls /metrics + /healthz after the run, diffing the
    client p95 against the scraped cqa_serve_request_micros histogram;
  * --access-log=FILE (with --spawn) passes --obs_access_log and then
    validates the JSONL schema and that per-phase micros sum to within
    10% of each logged total;
  * --trace-export=FILE (with --spawn) passes --obs_trace and verifies
    the exported spans carry the loadgen trace ids verbatim;
  * --pprof (needs --metrics-port) pulls /debug/pprof/profile while the
    load runs and asserts the serve.sample phase dominates the CPU
    samples — the sampling profiler cross-checked against phase timing.

Typical session against an already-running daemon:

    python3 tools/loadgen.py --port=7411 --data=/tmp/tpch \
        --requests=200 --concurrency=16

Self-contained session (spawns the daemon, generates a dataset, drives
load, then SIGTERMs the daemon and verifies the graceful drain):

    python3 tools/loadgen.py --spawn=build/serve/cqad \
        --gen=build/examples/cqa_cli --sf=0.001 \
        --requests=200 --concurrency=16

By default requests rotate through all four schemes (Natural, KL, KLM,
Cover) and a small set of seeds, so the daemon's synopsis cache is
exercised with both hits and misses; pass --scheme to pin one.

Exit status: 0 on success; 1 if any request failed with an unexpected
error (503-shed responses are expected under deliberate overload and are
counted, not failed, when --allow-shed is given) or the drain check
fails.
"""

from __future__ import annotations

import argparse
import collections
import json
import math
import os
import selectors
import shutil
import signal
import socket
import struct
import subprocess
import sys
import tempfile
import threading
import time

DEFAULT_QUERY = (
    "Q(NN) :- customer(CK, CN, CA, NK, CP, CB, CS, CC), "
    "nation(NK, NN, RK, NC)."
)
SCHEMES = ["Natural", "KL", "KLM", "Cover"]
MAX_FRAME = 8 * 1024 * 1024


# ---------------------------------------------------------------------------
# Wire protocol: length-prefixed JSON frames (docs/protocol.md).
# ---------------------------------------------------------------------------

def send_frame(sock: socket.socket, payload: dict) -> None:
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    sock.sendall(struct.pack(">I", len(body)) + body)


def recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n > 0:
        chunk = sock.recv(n)
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict:
    (length,) = struct.unpack(">I", recv_exact(sock, 4))
    if length == 0 or length > MAX_FRAME:
        raise ConnectionError(f"bad frame length {length}")
    return json.loads(recv_exact(sock, length).decode("utf-8"))


def call(host: str, port: int, payload: dict, timeout: float = 60.0) -> dict:
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        send_frame(sock, payload)
        return recv_frame(sock)


# ---------------------------------------------------------------------------
# Binary (v2) codec. Field tables mirror src/serve/protocol.cc and the
# layout section of docs/protocol.md.
# ---------------------------------------------------------------------------

BINARY_MAGIC = 0x02
KIND_REQUEST = 0x01
KIND_RESPONSE = 0x02
OPS = {"query": 0, "stats": 1, "ping": 2}
SCHEMAS = {"tpch": 0, "tpcds": 1}


def _varint(v: int) -> bytes:
    out = bytearray()
    while True:
        b = v & 0x7F
        v >>= 7
        if v:
            out.append(b | 0x80)
        else:
            out.append(b)
            return bytes(out)


def _vf(field: int, v: int) -> bytes:          # varint field
    return _varint(field << 3) + _varint(v)


def _lf(field: int, data: bytes) -> bytes:     # length-delimited field
    return _varint((field << 3) | 2) + _varint(len(data)) + data


def _ff(field: int, x: float) -> bytes:        # fixed64 (double) field
    return _varint((field << 3) | 1) + struct.pack("<d", x)


def encode_request(payload: dict, codec: str) -> bytes:
    """Serializes one request payload in the chosen codec."""
    if codec == "json":
        return json.dumps(payload, separators=(",", ":")).encode("utf-8")
    out = bytearray((BINARY_MAGIC, KIND_REQUEST))
    out += _vf(1, OPS[payload["op"]])
    if payload.get("id"):
        out += _lf(2, payload["id"].encode("utf-8"))
    trace = payload.get("trace", {})
    if trace.get("id"):
        out += _lf(13, trace["id"].encode("utf-8"))
        if trace.get("parent"):
            out += _vf(14, trace["parent"])
    if payload["op"] == "query":
        out += _vf(3, SCHEMAS[payload.get("schema", "tpch")])
        out += _lf(4, payload.get("data", "").encode("utf-8"))
        out += _lf(5, payload.get("query", "").encode("utf-8"))
        out += _lf(6, payload.get("scheme", "KLM").encode("utf-8"))
        out += _ff(7, payload.get("epsilon", 0.1))
        out += _ff(8, payload.get("delta", 0.25))
        if payload.get("deadline_s", 0) > 0:
            out += _ff(9, payload["deadline_s"])
        out += _vf(10, payload.get("seed", 7))
        if payload.get("threads", 1) > 1:
            out += _vf(11, payload["threads"])
        if payload.get("want_record"):
            out += _vf(12, 1)
    return bytes(out)


class _BinReader:
    def __init__(self, body: bytes) -> None:
        self.body = body
        self.pos = 0

    def at_end(self) -> bool:
        return self.pos >= len(self.body)

    def varint(self) -> int:
        shift = 0
        value = 0
        while True:
            if self.pos >= len(self.body) or shift > 63:
                raise ValueError("truncated varint")
            b = self.body[self.pos]
            self.pos += 1
            value |= (b & 0x7F) << shift
            if not b & 0x80:
                return value
            shift += 7

    def fixed64(self) -> float:
        if self.pos + 8 > len(self.body):
            raise ValueError("truncated fixed64")
        (v,) = struct.unpack_from("<d", self.body, self.pos)
        self.pos += 8
        return v

    def bytes_field(self) -> bytes:
        n = self.varint()
        if self.pos + n > len(self.body):
            raise ValueError("truncated length-delimited field")
        out = self.body[self.pos:self.pos + n]
        self.pos += n
        return out


def decode_response(body: bytes) -> dict:
    """Decodes a response payload (either codec) into the JSON dict shape
    the rest of this tool consumes."""
    if not body:
        raise ValueError("empty response payload")
    if body[0] != BINARY_MAGIC:
        return json.loads(body.decode("utf-8"))
    if len(body) < 2 or body[1] != KIND_RESPONSE:
        raise ValueError("binary payload is not a response")
    reply: dict = {"v": 2, "status": "ok", "code": 0}
    r = _BinReader(body[2:])
    while not r.at_end():
        tag = r.varint()
        field, wire = tag >> 3, tag & 0x7
        if field == 1:
            reply["id"] = r.bytes_field().decode("utf-8")
        elif field == 2:
            reply["code"] = r.varint()
            reply["status"] = "error" if reply["code"] else "ok"
        elif field == 3:
            reply["error"] = r.bytes_field().decode("utf-8")
        elif field == 4:
            reply["retry_after_s"] = r.fixed64()
        elif field == 5:
            flags = r.varint()
            if flags & 1:
                reply["cache"] = "hit"
            if flags & 2:
                reply["timed_out"] = True
            if flags & 4:
                reply["pong"] = True
        elif field == 6:
            reply["preprocess_seconds"] = r.fixed64()
        elif field == 7:
            reply["scheme_seconds"] = r.fixed64()
        elif field == 8:
            reply["total_samples"] = r.varint()
        elif field == 9:
            t = _BinReader(r.bytes_field())
            reply["timing"] = {
                name: t.varint()
                for name in ("queue_wait_micros", "cache_micros",
                             "preprocess_micros", "sample_micros",
                             "encode_micros", "total_micros")
            }
        elif field == 10:
            a = _BinReader(r.bytes_field())
            count = a.varint()
            tuples = [a.bytes_field().decode("utf-8") for _ in range(count)]
            reply["answers"] = [
                {"tuple": t, "frequency": a.fixed64()} for t in tuples
            ]
        elif field == 11:
            reply["record"] = json.loads(r.bytes_field().decode("utf-8"))
        elif field == 12:
            reply["metrics"] = json.loads(r.bytes_field().decode("utf-8"))
        elif field == 13:
            reply["server"] = json.loads(r.bytes_field().decode("utf-8"))
        elif wire == 0:
            r.varint()
        elif wire == 1:
            r.fixed64()
        elif wire == 2:
            r.bytes_field()
        else:
            raise ValueError(f"reserved wire type {wire}")
    return reply


# ---------------------------------------------------------------------------
# Pipelined connection engine: one thread, selectors, N connections each
# keeping up to `depth` requests in flight (client-assigned ids match
# responses back to requests; the server may complete them out of order).
# ---------------------------------------------------------------------------

class Stats:
    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.latencies_s: list[float] = []
        self.samples: list[float] = []
        self.by_status: dict[str, int] = {}
        self.cache_hits = 0
        self.shed = 0
        self.failures: list[str] = []

    def record(self, elapsed: float, reply: dict) -> None:
        status = reply.get("status", "?")
        code = int(reply.get("code", 0))
        with self.lock:
            self.latencies_s.append(elapsed)
            if "total_samples" in reply:
                self.samples.append(float(reply["total_samples"]))
            key = status if status == "ok" else f"error {code}"
            self.by_status[key] = self.by_status.get(key, 0) + 1
            if reply.get("cache") == "hit":
                self.cache_hits += 1
            if code == 503:
                self.shed += 1

    def fail(self, message: str) -> None:
        with self.lock:
            self.failures.append(message)

    def merge(self, other: "Stats") -> None:
        with self.lock:
            self.latencies_s.extend(other.latencies_s)
            self.samples.extend(other.samples)
            for key, n in other.by_status.items():
                self.by_status[key] = self.by_status.get(key, 0) + n
            self.cache_hits += other.cache_hits
            self.shed += other.shed
            self.failures.extend(other.failures)


def build_payload(args: argparse.Namespace, i: int) -> dict:
    payload = {
        "v": 1,
        "op": "query",
        "id": f"loadgen-{i}",
        "schema": args.schema,
        "data": args.data,
        "query": args.query,
        "scheme": args.scheme or SCHEMES[i % len(SCHEMES)],
        "epsilon": args.epsilon,
        "delta": args.delta,
        "seed": args.seed_base + (i // len(SCHEMES)) % args.seeds,
        "trace": {"id": f"loadgen-{i}"},
    }
    if args.deadline > 0:
        payload["deadline_s"] = args.deadline
    return payload


class Conn:
    """One pipelined connection working through its slice of requests."""

    def __init__(self, args: argparse.Namespace, indices: list[int],
                 stats: Stats, depth: int) -> None:
        self.args = args
        self.stats = stats
        self.depth = depth
        self.pending = collections.deque(indices)
        self.inflight: dict[str, tuple[int, float]] = {}
        self.outbuf = bytearray()
        self.inbuf = bytearray()
        self.done = False
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setblocking(False)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.sock.connect_ex((args.host, args.port))
        self.fill()

    def fill(self) -> None:
        """Encodes requests into outbuf until the window is full."""
        while self.pending and len(self.inflight) < self.depth:
            i = self.pending.popleft()
            payload = build_payload(self.args, i)
            body = encode_request(payload, self.args.codec)
            self.outbuf += struct.pack(">I", len(body)) + body
            self.inflight[payload["id"]] = (i, time.monotonic())

    def events(self) -> int:
        return selectors.EVENT_READ | (
            selectors.EVENT_WRITE if self.outbuf else 0)

    def finish(self, error: str | None = None) -> None:
        if error is not None:
            self.stats.fail(error)
        self.done = True

    def on_frame(self, body: bytes) -> None:
        if self.args.codec == "binary" and body[:1] == b"{":
            # The server must answer in the codec the request arrived
            # in; a JSON reply to a binary request means it silently
            # negotiated down to v1 — a protocol bug, never tolerated.
            raise ValueError(
                "server negotiated binary request down to v1 JSON: "
                f"{body[:80]!r}")
        reply = decode_response(body)
        rid = reply.get("id", "")
        entry = self.inflight.pop(rid, None)
        if entry is None:
            raise ValueError(f"response for unknown id {rid!r}")
        i, start = entry
        self.stats.record(time.monotonic() - start, reply)
        code = int(reply.get("code", 0))
        if reply.get("status") != "ok" and not (
                code == 503 and self.args.allow_shed):
            self.finish(f"request {i}: error {code}: "
                        f"{reply.get('error', '')}")

    def on_ready(self, mask: int) -> None:
        try:
            if mask & selectors.EVENT_WRITE and self.outbuf:
                sent = self.sock.send(self.outbuf)
                del self.outbuf[:sent]
            if mask & selectors.EVENT_READ:
                chunk = self.sock.recv(1 << 16)
                if not chunk:
                    raise ConnectionError("peer closed mid-stream")
                self.inbuf += chunk
                while len(self.inbuf) >= 4 and not self.done:
                    (length,) = struct.unpack_from(">I", self.inbuf)
                    if length == 0 or length > MAX_FRAME:
                        raise ConnectionError(f"bad frame length {length}")
                    if len(self.inbuf) < 4 + length:
                        break
                    body = bytes(self.inbuf[4:4 + length])
                    del self.inbuf[:4 + length]
                    self.on_frame(body)
                self.fill()
            if not self.done and not self.pending and not self.inflight:
                self.finish()
        except BlockingIOError:
            pass
        except (OSError, ConnectionError, ValueError) as err:
            self.finish(f"connection: {err}")


def run_load(args: argparse.Namespace, depth: int, stats: Stats) -> float:
    """Drives args.requests requests over args.concurrency pipelined
    connections at the given depth. Returns the wall time."""
    slices: list[list[int]] = [[] for _ in range(args.concurrency)]
    # Deal request indices round-robin so every connection sees the same
    # scheme/seed mix and cache misses are front-loaded evenly.
    for i in range(args.requests):
        slices[i % args.concurrency].append(i)
    sel = selectors.DefaultSelector()
    start = time.monotonic()
    live = 0
    for s in slices:
        if not s:
            continue
        conn = Conn(args, s, stats, depth)
        sel.register(conn.sock, conn.events(), conn)
        live += 1
    while live > 0:
        ready = sel.select(timeout=120.0)
        if not ready:
            for key in list(sel.get_map().values()):
                key.data.finish("timed out waiting for responses")
                sel.unregister(key.fileobj)
                key.data.sock.close()
            break
        for key, mask in ready:
            conn: Conn = key.data
            conn.on_ready(mask)
            if conn.done:
                sel.unregister(conn.sock)
                conn.sock.close()
                live -= 1
            else:
                sel.modify(conn.sock, conn.events(), conn)
    sel.close()
    return time.monotonic() - start


# ---------------------------------------------------------------------------
# Reporting.
# ---------------------------------------------------------------------------

def quantile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return math.nan
    pos = q * (len(sorted_values) - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


def print_client_report(stats: Stats, wall_s: float) -> None:
    lat = sorted(stats.latencies_s)
    print(f"requests:      {len(lat)} in {wall_s:.2f}s "
          f"({len(lat) / wall_s:.1f} req/s)" if wall_s > 0 else
          f"requests:      {len(lat)}")
    for key in sorted(stats.by_status):
        print(f"  {key}: {stats.by_status[key]}")
    print(f"  cache hits: {stats.cache_hits}")
    if lat:
        print("client-side latency:")
        for name, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99),
                        ("p99.9", 0.999)):
            print(f"  {name}: {quantile(lat, q) * 1e3:9.2f} ms")
        print(f"  max: {lat[-1] * 1e3:9.2f} ms")


def print_depth_table(args: argparse.Namespace,
                      cells: list[tuple[str, int, Stats, float]]) -> None:
    """One latency column per (codec, pipeline depth), quantile rows."""
    print(f"pipeline sweep: codec={args.codec}, "
          f"connections={args.concurrency}, "
          f"{args.requests} requests per cell")
    header = f"  {'':>10}" + "".join(
        f"  {codec[:4]}:{d:<6}" for codec, d, _, _ in cells)
    print(header)
    rows: list[tuple[str, list[str]]] = []
    quantiles = (("p50 ms", 0.50), ("p95 ms", 0.95), ("p99 ms", 0.99),
                 ("p99.9 ms", 0.999))
    for name, q in quantiles:
        row = []
        for _, _, stats, _ in cells:
            lat = sorted(stats.latencies_s)
            row.append(f"{quantile(lat, q) * 1e3:11.2f}")
        rows.append((name, row))
    rows.append(("req/s", [
        f"{len(s.latencies_s) / wall:11.1f}" if wall > 0 else f"{'-':>11}"
        for _, _, s, wall in cells
    ]))
    rows.append(("shed", [f"{s.shed:11d}" for _, _, s, _ in cells]))
    for name, row in rows:
        print(f"  {name:>10}" + "  ".join([""] + row))


def write_bench_json(args: argparse.Namespace,
                     cells: list[tuple[str, int, Stats, float]]) -> None:
    """Writes the sweep as a bench_json v1 artifact so bench_compare.py
    can diff serving latency across commits."""
    import platform

    results = []
    for codec, depth, stats, wall in cells:
        lat = sorted(stats.latencies_s)
        mean = sum(lat) / len(lat) if lat else math.nan
        var = (sum((x - mean) ** 2 for x in lat) / (len(lat) - 1)
               if len(lat) > 1 else 0.0)
        smp = stats.samples
        smp_mean = sum(smp) / len(smp) if smp else 0.0
        smp_var = (sum((x - smp_mean) ** 2 for x in smp) / (len(smp) - 1)
                   if len(smp) > 1 else 0.0)
        results.append({
            "scenario": "ServeLatency",
            "x_label": "pipeline_depth",
            "x": depth,
            "series": f"{codec}-c{args.concurrency}",
            "runs": len(lat),
            "timeouts": 0,
            "wall_seconds": {"mean": mean, "stddev": math.sqrt(var)},
            "samples": {"mean": smp_mean, "stddev": math.sqrt(smp_var)},
            "p99_seconds": quantile(lat, 0.99),
            "throughput_rps": len(lat) / wall if wall > 0 else 0.0,
        })
    doc = {
        "bench_json_version": 1,
        "name": "bench_serve",
        "git_sha": os.environ.get("GIT_SHA", "unknown"),
        "build": "Release",
        "no_obs": False,
        "unix_time": int(time.time()),
        "host": {
            "os": platform.system(),
            "machine": platform.machine(),
            "hardware_concurrency": os.cpu_count() or 1,
        },
        "config": {
            "requests": args.requests,
            "concurrency": args.concurrency,
            "codec": args.codec,
            "epsilon": args.epsilon,
            "delta": args.delta,
        },
        "results": results,
    }
    with open(args.bench_out, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")
    print(f"wrote bench json: {args.bench_out}")


def print_server_report(host: str, port: int) -> None:
    try:
        reply = call(host, port, {"v": 1, "op": "stats"})
    except (OSError, ConnectionError, ValueError) as err:
        print(f"stats op failed: {err}", file=sys.stderr)
        return
    server = reply.get("server", {})
    metrics = reply.get("metrics", {})
    counters = metrics.get("counters", {})
    histograms = metrics.get("histograms", {})
    print("server-side view (stats op):")
    for key in ("requests_total", "admission_shed", "cache_hits",
                "cache_misses", "cache_evictions", "cache_entries"):
        if key in server:
            print(f"  {key}: {server[key]}")
    micros = histograms.get("serve.request_micros")
    if micros:
        print("  serve.request_micros histogram:")
        for name in ("p50", "p95", "p99", "p999"):
            if name in micros:
                print(f"    {name}: {float(micros[name]) / 1e3:9.2f} ms")
        print(f"    count: {micros['count']}, max: "
              f"{float(micros['max']) / 1e3:.2f} ms")
    builds = counters.get("preprocess.builds")
    if builds is not None:
        print(f"  preprocess.builds: {builds}")


# ---------------------------------------------------------------------------
# Prometheus scrape + offline artifact checks.
# ---------------------------------------------------------------------------

def http_get_bytes(host: str, port: int, path: str,
                   timeout: float = 10.0) -> tuple[int, bytes]:
    """Minimal HTTP GET (stdlib http.client) returning (status, body)."""
    import http.client
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


def http_get(host: str, port: int, path: str,
             timeout: float = 10.0) -> tuple[int, str]:
    status, body = http_get_bytes(host, port, path, timeout)
    return status, body.decode("utf-8")


def parse_prometheus(text: str) -> dict[str, float]:
    """Exposition text -> {sample name with labels: value}. Raises on any
    line that is neither a comment nor 'name[{labels}] value'."""
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        if not name:
            raise ValueError(f"unparseable exposition line: {line!r}")
        samples[name] = float(value)
    return samples


def histogram_quantile(samples: dict[str, float], name: str,
                       q: float) -> float:
    """q-quantile upper bound (seconds-free, raw unit) from _bucket
    samples; nan when the histogram is absent or empty."""
    buckets = []
    prefix = f'{name}_bucket{{le="'
    for key, value in samples.items():
        if key.startswith(prefix):
            le = key[len(prefix):-2]
            buckets.append((math.inf if le == "+Inf" else float(le), value))
    buckets.sort()
    count = samples.get(f"{name}_count", 0.0)
    if not buckets or count <= 0:
        return math.nan
    target = q * count
    for le, cumulative in buckets:
        if cumulative >= target:
            return le
    return buckets[-1][0]


def scrape_and_compare(args: argparse.Namespace, stats: Stats) -> bool:
    status, health = http_get(args.host, args.metrics_port, "/healthz")
    print(f"healthz: {status} {health.strip()!r}")
    if status != 200:
        print("FAIL: /healthz not 200 while serving", file=sys.stderr)
        return False
    status, body = http_get(args.host, args.metrics_port, "/metrics")
    if status != 200:
        print(f"FAIL: /metrics returned {status}", file=sys.stderr)
        return False
    try:
        samples = parse_prometheus(body)
    except ValueError as err:
        print(f"FAIL: {err}", file=sys.stderr)
        return False
    count = samples.get("cqa_serve_request_micros_count", 0.0)
    print(f"scraped /metrics: {len(samples)} samples, "
          f"cqa_serve_request_micros_count={count:.0f}")
    if count < len(stats.latencies_s):
        print("FAIL: scraped request histogram count below client request "
              f"count ({count:.0f} < {len(stats.latencies_s)})",
              file=sys.stderr)
        return False
    client_p95_us = quantile(sorted(stats.latencies_s), 0.95) * 1e6
    server_p95_us = histogram_quantile(samples, "cqa_serve_request_micros",
                                       0.95)
    if not math.isnan(server_p95_us):
        print(f"p95 compare: client {client_p95_us / 1e3:.2f} ms vs scraped "
              f"server histogram upper bound {server_p95_us / 1e3:.2f} ms")
        # Power-of-two buckets report an upper bound: the server value may
        # be up to 2x above the true latency, and the client adds RTT on
        # top of the server's view — so only order-of-magnitude agreement
        # is checkable. A 'bound below client/4' breach means the scrape
        # and the run measured different things.
        if server_p95_us * 4 < client_p95_us:
            print("FAIL: scraped server p95 implausibly below client p95",
                  file=sys.stderr)
            return False
    return True


def pprof_worker(args: argparse.Namespace, result: dict) -> None:
    """Fetches /debug/pprof/profile while the load runs (own thread)."""
    try:
        status, body = http_get_bytes(
            args.host, args.metrics_port,
            f"/debug/pprof/profile?seconds={args.pprof_seconds}",
            timeout=args.pprof_seconds + 30.0)
        result["status"] = status
        result["body"] = body
    except OSError as err:
        result["error"] = str(err)


def check_pprof(args: argparse.Namespace, result: dict) -> bool:
    """Decodes the profile collected under load and asserts the sampler
    phase ([serve.sample] region frames) dominates the samples — the
    profiler agreeing with what the phase timings already say the
    daemon spends its CPU on."""
    import gzip

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    import profile_view

    if "error" in result:
        print(f"FAIL: pprof fetch: {result['error']}", file=sys.stderr)
        return False
    status = result.get("status")
    if status == 501:
        print("pprof check skipped: this build cannot profile "
              "(CQABENCH_NO_OBS or sanitizers; endpoint answered 501)")
        return True
    if status != 200:
        print(f"FAIL: /debug/pprof/profile returned {status}",
              file=sys.stderr)
        return False
    try:
        folded = profile_view.decode_profile(gzip.decompress(result["body"]))
    except (OSError, ValueError) as err:
        print(f"FAIL: profile did not decode: {err}", file=sys.stderr)
        return False
    total = sum(count for _, count in folded)
    if total == 0:
        print("FAIL: profile holds zero samples under load", file=sys.stderr)
        return False
    share = profile_view.share_of(folded, "serve.sample")
    print(f"pprof under load: {total} samples, "
          f"serve.sample share {share:.1%} "
          f"(required ≥ {args.pprof_min_sample_share:.1%})")
    if share < args.pprof_min_sample_share:
        print(f"FAIL: serve.sample share {share:.1%} below "
              f"{args.pprof_min_sample_share:.1%} — the profiler and the "
              f"phase timings disagree about where CPU goes",
              file=sys.stderr)
        return False
    return True


def check_access_log(path: str, requests: int) -> bool:
    """Validates the JSONL access log: parseable lines, ok-query phase
    sums within 10% of the logged total, trace ids present."""
    lines = 0
    checked = 0
    traced = 0
    worst = 0.0
    phases = ("queue_wait_micros", "cache_micros", "preprocess_micros",
              "sample_micros", "encode_micros")
    with open(path, "r", encoding="utf-8") as f:
        for raw in f:
            if not raw.strip():
                continue
            entry = json.loads(raw)
            lines += 1
            if "op" not in entry or "code" not in entry:
                print(f"FAIL: access-log line missing op/code: {raw!r}",
                      file=sys.stderr)
                return False
            if entry.get("trace_id", "").startswith("loadgen-"):
                traced += 1
            if entry["op"] != "query" or entry["code"] != 0:
                continue
            total = entry["total_micros"]
            phase_sum = sum(entry[p] for p in phases)
            if total >= 1000:
                checked += 1
                gap = abs(total - phase_sum) / total
                worst = max(worst, gap)
                if gap > 0.10:
                    print(f"FAIL: phase sum {phase_sum} vs total {total} "
                          f"({gap:.1%} apart): {raw!r}", file=sys.stderr)
                    return False
    print(f"access log: {lines} lines, {traced} with loadgen trace ids, "
          f"{checked} phase-sum checks passed (worst gap {worst:.1%})")
    if lines == 0:
        print("FAIL: access log is empty", file=sys.stderr)
        return False
    return True


def check_trace_export(path: str, requests: int) -> bool:
    """Verifies the exported span JSONL carries loadgen trace ids."""
    span_count = 0
    traced_ids = set()
    with open(path, "r", encoding="utf-8") as f:
        for raw in f:
            if not raw.strip():
                continue
            record = json.loads(raw)
            if record.get("trace_meta"):
                print(f"trace export: dropped_spans="
                      f"{record.get('dropped_spans')}, buffered_spans="
                      f"{record.get('buffered_spans')}")
                continue
            span_count += 1
            trace_id = record.get("trace_id", "")
            if trace_id.startswith("loadgen-"):
                traced_ids.add(trace_id)
    print(f"trace export: {span_count} spans, {len(traced_ids)} distinct "
          f"loadgen trace ids")
    if not traced_ids:
        print("FAIL: no loadgen trace ids in exported spans", file=sys.stderr)
        return False
    return True


# ---------------------------------------------------------------------------
# Optional daemon / dataset management.
# ---------------------------------------------------------------------------

def spawn_cqad(args: argparse.Namespace) -> subprocess.Popen:
    cmd = [args.spawn, f"--host={args.host}", f"--port={args.port}",
           f"--workers={args.workers}"]
    if args.metrics_port >= 0:
        cmd.append(f"--metrics_port={args.metrics_port}")
    if args.access_log:
        cmd.append(f"--obs_access_log={args.access_log}")
    if args.trace_export:
        cmd.append(f"--obs_trace={args.trace_export}")
    if args.cqad_flag:
        cmd.extend(args.cqad_flag)
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)
    assert proc.stdout is not None
    line = proc.stdout.readline()
    # "cqad listening on HOST:PORT" — the daemon's readiness line.
    if "cqad listening on" not in line:
        proc.kill()
        raise RuntimeError(f"unexpected cqad output: {line!r}")
    args.port = int(line.rsplit(":", 1)[1])
    if args.metrics_port >= 0:
        line = proc.stdout.readline()
        # "cqad metrics on HOST:PORT" — resolves --metrics_port=0.
        if "cqad metrics on" not in line:
            proc.kill()
            raise RuntimeError(f"expected metrics line, got: {line!r}")
        args.metrics_port = int(line.rsplit(":", 1)[1])
    print(f"spawned cqad pid {proc.pid} on {args.host}:{args.port}")
    return proc


def drain_cqad(proc: subprocess.Popen, timeout: float) -> bool:
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        print("cqad did not drain before timeout", file=sys.stderr)
        return False
    assert proc.stdout is not None
    tail = proc.stdout.read()
    if "cqad drained cleanly" not in tail:
        print(f"cqad exited without drain line; tail: {tail!r}",
              file=sys.stderr)
        return False
    print("cqad drained cleanly on SIGTERM")
    return proc.returncode == 0


def generate_dataset(args: argparse.Namespace) -> str:
    out = tempfile.mkdtemp(prefix="cqa_loadgen_")
    cmd = [args.gen, "gen", f"--schema={args.schema}", f"--sf={args.sf}",
           f"--out={out}", "--seed=17"]
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    return out


# ---------------------------------------------------------------------------
# Main.
# ---------------------------------------------------------------------------

def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="cqad port (required unless --spawn)")
    parser.add_argument("--data", default="",
                        help=".tbl directory (required unless --gen)")
    parser.add_argument("--query", default=DEFAULT_QUERY)
    parser.add_argument("--schema", default="tpch",
                        choices=["tpch", "tpcds"])
    parser.add_argument("--scheme", default="",
                        help="pin one scheme; default rotates all four")
    parser.add_argument("--epsilon", type=float, default=0.1)
    parser.add_argument("--delta", type=float, default=0.25)
    parser.add_argument("--deadline", type=float, default=0.0,
                        help="per-request deadline seconds (0 = server default)")
    parser.add_argument("--requests", type=int, default=100)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--pipeline", default="1",
                        help="requests kept in flight per connection; a "
                             "comma list (e.g. 1,4,16) sweeps the depths "
                             "and prints one latency column per depth")
    parser.add_argument("--codec", default="json",
                        help="wire codec for query requests: v1 json or "
                             "v2 binary (fails loudly if the server "
                             "answers a binary request in JSON); a comma "
                             "list (json,binary) sweeps both codecs")
    parser.add_argument("--bench-out", default="",
                        help="write the run as a bench_json v1 file "
                             "(BENCH_serve.json) for bench_compare.py")
    parser.add_argument("--max-p99", type=float, default=0.0,
                        help="fail if any depth's client-side p99 "
                             "latency exceeds this many seconds "
                             "(0 = no gate)")
    parser.add_argument("--seeds", type=int, default=2,
                        help="distinct seeds to rotate through")
    parser.add_argument("--seed-base", type=int, default=1)
    parser.add_argument("--allow-shed", action="store_true",
                        help="treat 503 responses as expected, not failures")
    parser.add_argument("--spawn", default="",
                        help="path to cqad: spawn it, drive it, SIGTERM it")
    parser.add_argument("--workers", type=int, default=8,
                        help="worker threads for a spawned cqad")
    parser.add_argument("--cqad-flag", action="append", default=[],
                        help="extra flag passed through to a spawned cqad "
                             "(repeatable), e.g. --cqad-flag=--max_queue=4")
    parser.add_argument("--metrics-port", type=int, default=-1,
                        help="with --spawn: start cqad's /metrics listener "
                             "on this port (0 = ephemeral); without --spawn: "
                             "the running daemon's metrics port")
    parser.add_argument("--pprof", action="store_true",
                        help="while the load runs, pull /debug/pprof/profile "
                             "and assert the serve.sample phase dominates "
                             "the CPU samples (needs --metrics-port)")
    parser.add_argument("--pprof-seconds", type=float, default=3.0,
                        help="profile collection window for --pprof")
    parser.add_argument("--pprof-min-sample-share", type=float, default=0.8,
                        help="minimum fraction of samples that must carry "
                             "the serve.sample region for --pprof to pass")
    parser.add_argument("--scrape", action="store_true",
                        help="after the run, scrape /metrics + /healthz and "
                             "diff client p95 vs the server histogram "
                             "(needs --metrics-port)")
    parser.add_argument("--access-log", default="",
                        help="with --spawn: pass --obs_access_log=FILE and "
                             "validate the JSONL (phase sums, trace ids) "
                             "after the drain")
    parser.add_argument("--trace-export", default="",
                        help="with --spawn: pass --obs_trace=FILE and verify "
                             "loadgen trace ids appear in exported spans")
    parser.add_argument("--gen", default="",
                        help="path to cqa_cli: generate a throwaway dataset")
    parser.add_argument("--sf", type=float, default=0.001,
                        help="scale factor for --gen")
    return parser.parse_args()


def main() -> int:
    args = parse_args()
    generated_dir = ""
    proc = None
    ok = True
    try:
        if args.gen:
            generated_dir = generate_dataset(args)
            args.data = generated_dir
            print(f"generated {args.schema} sf={args.sf} at {args.data}")
        if not args.data:
            print("error: --data (or --gen) is required", file=sys.stderr)
            return 2
        if args.spawn:
            proc = spawn_cqad(args)
        elif args.port == 0:
            print("error: --port (or --spawn) is required", file=sys.stderr)
            return 2

        try:
            depths = [int(d) for d in str(args.pipeline).split(",") if d]
        except ValueError:
            print(f"error: bad --pipeline {args.pipeline!r}",
                  file=sys.stderr)
            return 2
        if not depths or min(depths) < 1:
            print("error: --pipeline depths must be >= 1", file=sys.stderr)
            return 2
        codecs = [c for c in str(args.codec).split(",") if c]
        if not codecs or any(c not in ("json", "binary") for c in codecs):
            print(f"error: bad --codec {args.codec!r} (json, binary, or "
                  "a comma list of both)", file=sys.stderr)
            return 2
        stats = Stats()
        pprof_result: dict = {}
        pprof_thread = None
        if args.pprof:
            if args.metrics_port < 0:
                print("error: --pprof needs --metrics-port", file=sys.stderr)
                return 2
            # Collect while the engine saturates the daemon (per-thread
            # CPU-time timers mean post-load idle adds ~no samples).
            pprof_thread = threading.Thread(target=pprof_worker,
                                            args=(args, pprof_result))
            pprof_thread.start()
        cells: list[tuple[str, int, Stats, float]] = []
        wall = 0.0
        for codec in codecs:
            args.codec = codec
            for depth in depths:
                depth_stats = Stats()
                depth_wall = run_load(args, depth, depth_stats)
                cells.append((codec, depth, depth_stats, depth_wall))
                stats.merge(depth_stats)
                wall += depth_wall
        args.codec = ",".join(codecs)
        if pprof_thread is not None:
            pprof_thread.join()

        if len(cells) == 1:
            print_client_report(stats, wall)
        else:
            print_depth_table(args, cells)
        if args.bench_out:
            write_bench_json(args, cells)
        if args.max_p99 > 0:
            for codec, depth, depth_stats, _ in cells:
                lat = sorted(depth_stats.latencies_s)
                p99 = quantile(lat, 0.99) if lat else math.inf
                if p99 > args.max_p99:
                    print(f"FAIL: {codec} depth {depth} p99 "
                          f"{p99 * 1e3:.1f} ms exceeds --max-p99 "
                          f"{args.max_p99 * 1e3:.1f} ms",
                          file=sys.stderr)
                    ok = False
        print_server_report(args.host, args.port)
        if args.scrape:
            if args.metrics_port < 0:
                print("error: --scrape needs --metrics-port",
                      file=sys.stderr)
                ok = False
            elif not scrape_and_compare(args, stats):
                ok = False
        if args.pprof and not check_pprof(args, pprof_result):
            ok = False
        if stats.failures:
            ok = False
            for f in stats.failures[:10]:
                print(f"FAIL: {f}", file=sys.stderr)
            if len(stats.failures) > 10:
                print(f"... and {len(stats.failures) - 10} more",
                      file=sys.stderr)
    finally:
        if proc is not None:
            if not drain_cqad(proc, timeout=30.0):
                ok = False
        # The access log is written live but the trace export lands at
        # drain; check both once the daemon is down and the files are
        # final (they only exist when the run got as far as spawning).
        if args.access_log and os.path.exists(args.access_log):
            if not check_access_log(args.access_log, args.requests):
                ok = False
        if args.trace_export and os.path.exists(args.trace_export):
            if not check_trace_export(args.trace_export, args.requests):
                ok = False
        if generated_dir:
            shutil.rmtree(generated_dir, ignore_errors=True)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
