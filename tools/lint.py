#!/usr/bin/env python3
"""Project-specific source lints for the cqabench tree.

Fast, dependency-free checks that encode conventions the compiler cannot:

  1. RNG discipline: all randomness flows through src/common/rng.*.  Raw
     rand()/srand()/drand48()/std::random_device/std::mt19937 anywhere else
     makes benchmark runs unreproducible.
  2. Obs-macro discipline: CQA_OBS_COUNT/COUNT_N/OBSERVE take a *literal*
     lowercase dotted metric name ("phase.metric_name").  Computed names
     defeat the function-local pointer cache in obs/metrics.h and would
     register a new metric per distinct string at runtime.
  3. Test coverage by reference: every library .cc under src/ must be
     reachable from the test suite -- either a tests/<stem>_test.cc exists
     or some test includes the corresponding header.
  4. Include-guard convention: headers use CQABENCH_<PATH>_H_ where <PATH>
     is the include path (src/ stripped) upper-cased, and the guard's
     #ifndef/#define pair matches.
  5. Bench JSON discipline: every bench/bench_*.cc supports the
     machine-readable --bench_json= flag (via bench/bench_flags.h or a
     hand-rolled parser), so the continuous-benchmarking pipeline can
     collect BENCH_*.json from any benchmark binary.
  6. Batch-draw discipline: every Sampler subclass overrides DrawBatch
     (the estimator loops draw in blocks; a subclass that forgets the
     override silently falls back to per-draw virtual dispatch) unless it
     is in the explicit opt-out set of test-only stub samplers.
  7. Documentation discipline: (a) every public header under src/cqa and
     src/serve opens with a file-level // comment (before the include
     guard) saying what the module is; (b) every command-line flag
     registered by the bench harness (bench/bench_flags.h), the CLI
     (examples/cqa_cli.cpp), or the serving binaries (serve/cqad.cc,
     serve/cqa_client.cc) is mentioned as --flag somewhere in README.md
     or docs/, so the flag tables cannot silently drift from the code.
  8. Metric catalog discipline: every metric name registered from
     non-test source -- CQA_OBS_COUNT/COUNT_N/OBSERVE literals and
     Registry GetGauge("...") literals -- must appear in docs/metrics.md,
     so the metric catalog cannot silently drift from the code.
  9. Concurrency discipline: non-test source synchronizes only through
     the annotated cqa::Mutex/MutexLock/CondVar wrappers
     (src/common/thread_annotations.h) so Clang Thread Safety Analysis
     sees every lock; raw std::mutex/std::condition_variable/
     std::lock_guard/std::unique_lock use outside that header is
     rejected.  Naked std::thread construction is confined to the pool
     (src/common/thread_pool.cc) and the daemon's dedicated
     acceptor/dispatcher and metrics-scrape threads
     (src/serve/server.cc, src/serve/metrics_http.cc).
 10. Event-demultiplexing discipline: raw epoll_*/poll/ppoll calls are
     confined to src/serve/reactor.* (the event-loop single owner).
     Everyone else goes through reactor's EventLoop/PollReadable so fd
     readiness has one implementation to audit for edge-trigger and
     EINTR handling.

Exit status is 0 iff the tree is clean.  Run from anywhere:
    python3 tools/lint.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC_DIRS = ["src", "bench", "tests", "examples", "serve"]
CXX_SUFFIXES = {".cc", ".cpp", ".h"}

# ---------------------------------------------------------------------------
# Check 1: randomness goes through src/common/rng.* only.
# ---------------------------------------------------------------------------

RNG_PATTERN = re.compile(
    r"std::random_device|std::mt19937|\bdrand48\b|\bsrand\s*\(|"
    r"(?<![\w:])rand\s*\(\s*\)"
)
RNG_ALLOWED = {"src/common/rng.h", "src/common/rng.cc"}


def check_rng(path: Path, rel: str, text: str, errors: list[str]) -> None:
    if rel in RNG_ALLOWED:
        return
    for lineno, line in enumerate(text.splitlines(), 1):
        code = strip_comments(line)
        if RNG_PATTERN.search(code):
            errors.append(
                f"{rel}:{lineno}: raw RNG primitive; use cqa::Rng "
                f"(src/common/rng.h) so runs stay seed-reproducible"
            )


# ---------------------------------------------------------------------------
# Check 2: obs macros take literal dotted metric names.
# ---------------------------------------------------------------------------

OBS_CALL = re.compile(r"\bCQA_OBS_(COUNT_N|COUNT|OBSERVE)\s*\(\s*([^,)]*)")
METRIC_NAME = re.compile(r'^"[a-z0-9_]+(\.[a-z0-9_]+)+"$')


def check_obs_macros(path: Path, rel: str, text: str, errors: list[str]) -> None:
    if rel in ("src/obs/metrics.h", "src/obs/metrics.cc"):
        return  # The macro definitions themselves; other obs sources
        # (profiler, resource) are call sites like everyone else.
    # Strip comments but keep newlines so offsets map back to line numbers;
    # calls may wrap, so match across lines.
    stripped = "\n".join(strip_comments(line) for line in text.splitlines())
    for match in OBS_CALL.finditer(stripped):
        arg = match.group(2).strip()
        lineno = stripped.count("\n", 0, match.start()) + 1
        if not METRIC_NAME.match(arg):
            errors.append(
                f"{rel}:{lineno}: CQA_OBS_{match.group(1)} name {arg!r} "
                f'must be a literal lowercase dotted string like '
                f'"phase.metric_name"'
            )


# ---------------------------------------------------------------------------
# Check 3: every library .cc is referenced from the test suite.
# ---------------------------------------------------------------------------

# Files whose behaviour is exercised through a different module's tests.
TEST_REF_ALLOWED = {
    # Relation is the storage primitive under Database; database_test.cc and
    # block_index_test.cc drive every Relation member through that API.
    "src/storage/relation.cc",
}


def check_test_references(errors: list[str]) -> None:
    tests_dir = REPO / "tests"
    test_text = "\n".join(
        p.read_text(encoding="utf-8", errors="replace")
        for p in sorted(tests_dir.glob("*.cc"))
    )
    test_stems = {p.stem for p in tests_dir.glob("*_test.cc")}
    for cc in sorted((REPO / "src").rglob("*.cc")):
        rel = cc.relative_to(REPO).as_posix()
        if rel in TEST_REF_ALLOWED:
            continue
        stem = cc.stem
        header = cc.relative_to(REPO / "src").with_suffix(".h").as_posix()
        if f"{stem}_test" in test_stems:
            continue
        if f'"{header}"' in test_text:
            continue
        errors.append(
            f"{rel}: no test reference (expected tests/{stem}_test.cc or a "
            f'test that includes "{header}")'
        )


# ---------------------------------------------------------------------------
# Check 4: include-guard convention.
# ---------------------------------------------------------------------------

GUARD_IFNDEF = re.compile(r"^\s*#ifndef\s+(\w+)", re.MULTILINE)


def expected_guard(rel: str) -> str:
    path = rel[len("src/"):] if rel.startswith("src/") else rel
    token = re.sub(r"[^A-Za-z0-9]", "_", path)
    return f"CQABENCH_{token.upper()}_"


def check_include_guard(path: Path, rel: str, text: str, errors: list[str]) -> None:
    if path.suffix != ".h":
        return
    want = expected_guard(rel)
    match = GUARD_IFNDEF.search(text)
    if not match:
        errors.append(f"{rel}: missing include guard (expected {want})")
        return
    got = match.group(1)
    if got != want:
        errors.append(f"{rel}: include guard {got} should be {want}")
        return
    if f"#define {want}" not in text:
        errors.append(f"{rel}: #ifndef {want} without matching #define")


# ---------------------------------------------------------------------------
# Check 5: every bench binary registers --bench_json.
# ---------------------------------------------------------------------------

def check_bench_json_flag(errors: list[str]) -> None:
    for cc in sorted((REPO / "bench").glob("bench_*.cc")):
        rel = cc.relative_to(REPO).as_posix()
        text = cc.read_text(encoding="utf-8", errors="replace")
        if '#include "bench/bench_flags.h"' in text or "--bench_json" in text:
            continue
        errors.append(
            f"{rel}: no --bench_json support (include bench/bench_flags.h "
            f"or parse --bench_json= directly) -- every bench binary must "
            f"emit machine-readable BENCH_*.json"
        )


# ---------------------------------------------------------------------------
# Check 6: Sampler subclasses override DrawBatch (or opt out explicitly).
# ---------------------------------------------------------------------------

SAMPLER_DECL = re.compile(r"class\s+(\w+)\s*(?:final\s*)?:\s*public\s+Sampler\b")

# Test-only stubs whose draws are trivially cheap: the default per-draw
# loop is fine and an override would be noise. Production samplers in src/
# must never be listed here.
DRAWBATCH_OPT_OUT = {"BernoulliSampler", "ConstantSampler"}


def check_drawbatch_overrides(path: Path, rel: str, text: str,
                              errors: list[str]) -> None:
    for match in SAMPLER_DECL.finditer(text):
        name = match.group(1)
        if name in DRAWBATCH_OPT_OUT:
            continue
        lineno = text.count("\n", 0, match.start()) + 1
        # The class body ends at the first non-indented closing brace.
        end = text.find("\n};", match.end())
        body = text[match.end(): end if end >= 0 else len(text)]
        if "DrawBatch" not in body:
            errors.append(
                f"{rel}:{lineno}: sampler {name} does not override DrawBatch "
                f"-- the estimator loops draw in blocks, so it would fall "
                f"back to per-draw virtual dispatch; override it or add the "
                f"class to DRAWBATCH_OPT_OUT in tools/lint.py"
            )


# ---------------------------------------------------------------------------
# Check 7: documentation discipline -- header file comments + flag docs.
# ---------------------------------------------------------------------------

# Directories whose public headers must open with a file-level comment.
DOC_HEADER_DIRS = ("src/cqa/", "src/serve/", "src/storage/")

# Flag-registering sources and how to extract their flag names.
FLAG_VALIDATE_SOURCES = [
    "examples/cqa_cli.cpp",
    "serve/cqad.cc",
    "serve/cqa_client.cc",
]
FLAG_LITERAL_SOURCES = ["bench/bench_flags.h", "bench/bench_micro.cc"]
VALIDATE_KEYS = re.compile(r"ValidateKeys\s*\(\s*\{([^}]*)\}", re.DOTALL)
QUOTED_NAME = re.compile(r'"([A-Za-z0-9_]+)"')
LITERAL_FLAG = re.compile(r'"--([A-Za-z0-9_]+)[="]')
# Internal toggles that every CLI accepts but no table documents.
FLAG_DOC_OPT_OUT = {"help"}


def check_header_file_comment(path: Path, rel: str, text: str,
                              errors: list[str]) -> None:
    if path.suffix != ".h" or not rel.startswith(DOC_HEADER_DIRS):
        return
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if not stripped.startswith("//"):
            errors.append(
                f"{rel}:1: public header has no file-level comment -- open "
                f"with a // block describing the module before the include "
                f"guard"
            )
        return


def documented_flag_text() -> str:
    parts = []
    for name in ["README.md", "DESIGN.md", "EXPERIMENTS.md"]:
        p = REPO / name
        if p.is_file():
            parts.append(p.read_text(encoding="utf-8", errors="replace"))
    docs = REPO / "docs"
    if docs.is_dir():
        for p in sorted(docs.rglob("*.md")):
            parts.append(p.read_text(encoding="utf-8", errors="replace"))
    return "\n".join(parts)


def check_flag_docs(errors: list[str]) -> None:
    docs = documented_flag_text()
    for rel in FLAG_VALIDATE_SOURCES + FLAG_LITERAL_SOURCES:
        path = REPO / rel
        if not path.is_file():
            errors.append(f"{rel}: flag source listed in tools/lint.py "
                          f"does not exist")
            continue
        text = path.read_text(encoding="utf-8", errors="replace")
        flags: set[str] = set()
        if rel in FLAG_VALIDATE_SOURCES:
            for match in VALIDATE_KEYS.finditer(text):
                flags.update(QUOTED_NAME.findall(match.group(1)))
        else:
            flags.update(LITERAL_FLAG.findall(text))
        for flag in sorted(flags - FLAG_DOC_OPT_OUT):
            if f"--{flag}" not in docs:
                errors.append(
                    f"{rel}: flag --{flag} is not documented -- mention it "
                    f"in README.md or docs/ (the flag tables must cover "
                    f"every registered flag)"
                )


# ---------------------------------------------------------------------------
# Check 8: every exported metric name is cataloged in docs/metrics.md.
# ---------------------------------------------------------------------------

GAUGE_CALL = re.compile(r'GetGauge\s*\(\s*"([a-z0-9_.]+)"')


def check_metric_docs(errors: list[str]) -> None:
    catalog_path = REPO / "docs" / "metrics.md"
    catalog = (catalog_path.read_text(encoding="utf-8", errors="replace")
               if catalog_path.is_file() else "")
    seen: dict[str, str] = {}  # metric name -> first declaring site.
    for d in ["src", "bench", "examples", "serve"]:
        root = REPO / d
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix not in CXX_SUFFIXES:
                continue
            rel = path.relative_to(REPO).as_posix()
            if rel in ("src/obs/metrics.h", "src/obs/metrics.cc"):
                continue  # The macro/registry definitions themselves; other
                # obs sources (profiler, resource) register real metrics
                # and must catalog them like everyone else.
            text = path.read_text(encoding="utf-8", errors="replace")
            stripped = "\n".join(
                strip_comments(line) for line in text.splitlines())
            for match in OBS_CALL.finditer(stripped):
                arg = match.group(2).strip()
                if METRIC_NAME.match(arg):
                    seen.setdefault(arg.strip('"'), rel)
            for match in GAUGE_CALL.finditer(stripped):
                seen.setdefault(match.group(1), rel)
    for name in sorted(seen):
        if f"`{name}`" not in catalog:
            errors.append(
                f"{seen[name]}: metric {name} is not cataloged -- add a "
                f"`{name}` row to docs/metrics.md"
            )


# ---------------------------------------------------------------------------
# Check 9: concurrency discipline -- annotated wrappers and thread sites.
# ---------------------------------------------------------------------------

# Raw synchronization primitives the TSA annotations cannot see.  The
# annotated wrappers in src/common/thread_annotations.h are the only
# place allowed to touch them.
RAW_SYNC_PATTERN = re.compile(
    r"std::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable_any|"
    r"condition_variable|lock_guard|unique_lock|scoped_lock)\b"
)
RAW_SYNC_ALLOWED = {"src/common/thread_annotations.h"}

# std::thread construction (a ctor call with arguments -- bare member
# declarations, std::thread::id, and hardware_concurrency() don't match).
THREAD_CTOR_PATTERN = re.compile(r"std::j?thread\s*[({]")
THREAD_CTOR_ALLOWED = {
    # The shared worker pool: the one sanctioned thread factory.
    "src/common/thread_pool.cc",
    # cqad's dedicated acceptor + dispatcher threads.
    "src/serve/server.cc",
    # The /metrics HTTP listener: acceptor + per-connection threads (a
    # profile collection holds its connection for seconds and must not
    # block scrapes or health probes).
    "src/serve/metrics_http.cc",
    # The profiler's ring-drain aggregator: it must keep running while
    # pool workers are being sampled, so it cannot be a pool task.
    "src/obs/profiler.cc",
    # The resource sampler's once-a-second /proc tick.
    "src/obs/resource.cc",
}


def check_concurrency_discipline(path: Path, rel: str, text: str,
                                 errors: list[str]) -> None:
    if rel.startswith("tests/"):
        return  # Tests may exercise raw primitives directly.
    for lineno, line in enumerate(text.splitlines(), 1):
        code = strip_comments(line)
        if rel not in RAW_SYNC_ALLOWED:
            match = RAW_SYNC_PATTERN.search(code)
            if match:
                errors.append(
                    f"{rel}:{lineno}: raw {match.group(0)}; use the "
                    f"annotated cqa::Mutex/MutexLock/CondVar wrappers "
                    f"(src/common/thread_annotations.h) so Clang Thread "
                    f"Safety Analysis checks the locking contract"
                )
        if rel not in THREAD_CTOR_ALLOWED and THREAD_CTOR_PATTERN.search(code):
            errors.append(
                f"{rel}:{lineno}: naked std::thread construction; run work "
                f"on cqa::ThreadPool (src/common/thread_pool.h) or add the "
                f"site to THREAD_CTOR_ALLOWED in tools/lint.py with a "
                f"rationale"
            )


# ---------------------------------------------------------------------------
# Check 10: event demultiplexing -- epoll/poll confined to the reactor.
# ---------------------------------------------------------------------------

RAW_EVENT_PATTERN = re.compile(r"\b(?:epoll_\w+|ppoll|poll)\s*\(")
RAW_EVENT_ALLOWED = {"src/serve/reactor.cc", "src/serve/reactor.h"}


def check_event_demux_discipline(path: Path, rel: str, text: str,
                                 errors: list[str]) -> None:
    if rel in RAW_EVENT_ALLOWED:
        return
    for lineno, line in enumerate(text.splitlines(), 1):
        code = strip_strings(strip_comments(line))
        match = RAW_EVENT_PATTERN.search(code)
        if match:
            errors.append(
                f"{rel}:{lineno}: raw {match.group(0).strip()}...) call; fd "
                f"readiness goes through serve/reactor (EventLoop or "
                f"PollReadable) so edge-trigger and EINTR handling have a "
                f"single audited owner"
            )


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------


def strip_strings(line: str) -> str:
    """Empties double-quoted string literals (best-effort, single line)."""
    return re.sub(r'"(?:\\.|[^"\\])*"', '""', line)

def strip_comments(line: str) -> str:
    """Removes // comments and string-free best-effort /* */ spans."""
    line = re.sub(r"/\*.*?\*/", "", line)
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def main() -> int:
    errors: list[str] = []
    files = []
    for d in SRC_DIRS:
        root = REPO / d
        if not root.is_dir():
            continue
        files.extend(
            p for p in sorted(root.rglob("*")) if p.suffix in CXX_SUFFIXES
        )
    for path in files:
        rel = path.relative_to(REPO).as_posix()
        text = path.read_text(encoding="utf-8", errors="replace")
        check_rng(path, rel, text, errors)
        check_obs_macros(path, rel, text, errors)
        check_include_guard(path, rel, text, errors)
        check_drawbatch_overrides(path, rel, text, errors)
        check_header_file_comment(path, rel, text, errors)
        check_concurrency_discipline(path, rel, text, errors)
        check_event_demux_discipline(path, rel, text, errors)
    check_test_references(errors)
    check_bench_json_flag(errors)
    check_flag_docs(errors)
    check_metric_docs(errors)

    if errors:
        for err in errors:
            print(err, file=sys.stderr)
        print(f"lint.py: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print(f"lint.py: OK ({len(files)} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
