// End-to-end benchmark-infrastructure demo on TPC-H: generate a
// consistent warehouse, inject query-aware noise (§6.1), inspect the
// resulting block structure, and answer a returned-items query (the Q10
// template) with approximate relative frequencies.

#include <algorithm>
#include <cstdio>

#include "cqa/apx_cqa.h"
#include "gen/noise.h"
#include "gen/tpch.h"
#include "gen/workloads.h"
#include "query/parser.h"
#include "storage/block_index.h"

using namespace cqa;

int main() {
  // 1. A small consistent TPC-H instance (dbgen's role in the paper).
  TpchOptions options;
  options.scale_factor = 0.0005;
  Dataset d = GenerateTpch(options);
  std::printf("generated TPC-H SF=%g: %zu facts, consistent: %s\n",
              options.scale_factor, d.db->NumFacts(),
              d.db->SatisfiesKeys() ? "yes" : "no");

  // 2. The query under investigation: customers with returned lineitems
  //    (the CQ reduction of TPC-H Q10).
  ConjunctiveQuery q = MustParseCq(
      *d.schema,
      "Q(CK, CN, NN) :- customer(CK, CN, CA, NK, CP, CB, CS, CC),"
      " orders(OK, CK, OS, TP, OD, OP, CL, SP, OC),"
      " lineitem(OK, PK, SK, LN, QT, EP, DI, TX, 'R', LS, SD, CD, RD, SI,"
      " SM, CM),"
      " nation(NK, NN, RK, NC).");

  // 3. Inject 40% query-aware noise with blocks of 2..5 facts.
  Rng rng(42);
  NoiseOptions noise;
  noise.p = 0.4;
  NoiseStats stats = AddQueryAwareNoise(d.db.get(), q, noise, rng);
  BlockIndex index = BlockIndex::Build(*d.db);
  std::printf(
      "noise: %zu query-relevant facts, %zu selected, %zu facts added; "
      "%.1f%% of facts now sit in conflicting blocks\n",
      stats.relevant_facts, stats.selected_facts, stats.facts_added,
      100.0 * index.InconsistencyRatio(*d.db));

  // 4. Preprocess once, report the dynamic parameters of §6.1.
  PreprocessResult pre = BuildSynopses(*d.db, q);
  std::printf(
      "syn_{Σ,Q}(D): %zu answers, %zu homomorphic images, balance %.2f "
      "(preprocessing %.3fs)\n",
      pre.NumAnswers(), pre.stats().num_distinct_images, pre.Balance(),
      pre.stats().seconds);

  // 5. Approximate CQA with the indicated scheme for non-Boolean CQs
  //    (take-home message 2: KLM), listing the least certain customers —
  //    the records a cleaning pipeline should look at first.
  ApxParams params;
  Rng scheme_rng(7);
  CqaRunResult run = ApxCqaOnSynopses(pre, SchemeKind::kKlm, params,
                                      scheme_rng);
  std::vector<CqaAnswer> answers = run.answers;
  std::sort(answers.begin(), answers.end(),
            [](const CqaAnswer& a, const CqaAnswer& b) {
              return a.frequency < b.frequency;
            });
  std::printf("\nleast-certain answers (KLM, ε=0.1, δ=0.25, %.3fs):\n",
              run.scheme_seconds);
  for (size_t i = 0; i < answers.size() && i < 5; ++i) {
    std::printf("  %-55s freq ≈ %.3f\n",
                TupleToString(answers[i].tuple).c_str(),
                answers[i].frequency);
  }
  size_t certain = 0;
  for (const CqaAnswer& a : answers) {
    if (a.frequency > 0.99) ++certain;
  }
  std::printf("\n%zu of %zu answers are (approximately) certain.\n",
              certain, answers.size());
  return 0;
}
