// Data-quality audit: the data-integration scenario the paper's
// introduction motivates ("inconsistency arises due to integration of
// conflicting sources").
//
// Two product catalogs are merged; where they disagree on a product's
// attributes the merged table violates the primary key. Instead of
// picking one source arbitrarily, the audit ranks every (product, price
// category) claim by its relative frequency across repairs — claims with
// frequency 1 are safe, fractional claims need human review.

#include <algorithm>
#include <cstdio>

#include "cqa/apx_cqa.h"
#include "cqa/exact.h"
#include "query/parser.h"

using namespace cqa;

int main() {
  Schema schema;
  schema.AddRelation(RelationSchema("product",
                                    {{"sku", ValueType::kInt},
                                     {"name", ValueType::kString},
                                     {"category", ValueType::kString},
                                     {"price_band", ValueType::kString}},
                                    {0}));
  schema.AddRelation(RelationSchema("category_margin",
                                    {{"category", ValueType::kString},
                                     {"band", ValueType::kString},
                                     {"margin", ValueType::kString}},
                                    {0, 1}));

  Database db(&schema);
  // Source A's catalog.
  db.Insert("product", {Value(100), Value("usb hub"), Value("electronics"),
                        Value("budget")});
  db.Insert("product", {Value(101), Value("desk lamp"), Value("home"),
                        Value("budget")});
  db.Insert("product", {Value(102), Value("monitor"), Value("electronics"),
                        Value("premium")});
  // Source B disagrees about sku 100 and 102 (merge conflicts), and adds
  // a second opinion about 101's category.
  db.Insert("product", {Value(100), Value("usb hub"), Value("electronics"),
                        Value("premium")});
  db.Insert("product", {Value(102), Value("monitor"), Value("office"),
                        Value("premium")});
  db.Insert("product", {Value(101), Value("desk lamp"), Value("office"),
                        Value("budget")});
  // Reference data (consistent).
  db.Insert("category_margin",
            {Value("electronics"), Value("budget"), Value("low")});
  db.Insert("category_margin",
            {Value("electronics"), Value("premium"), Value("high")});
  db.Insert("category_margin",
            {Value("home"), Value("budget"), Value("low")});
  db.Insert("category_margin",
            {Value("office"), Value("budget"), Value("low")});
  db.Insert("category_margin",
            {Value("office"), Value("premium"), Value("high")});

  std::printf("merged catalog has %zu key violations\n",
              db.FindKeyViolations().size());

  // Audit question: which (sku, margin) classifications does the merged
  // data support, and how strongly?
  ConjunctiveQuery q = MustParseCq(
      schema,
      "Q(SKU, M) :- product(SKU, N, C, B), category_margin(C, B, M).");

  ApxParams params;
  params.epsilon = 0.05;
  params.delta = 0.05;
  Rng rng(99);
  CqaRunResult run = ApxCqa(db, q, SchemeKind::kKlm, params, rng);

  std::vector<CqaAnswer> ranked = run.answers;
  std::sort(ranked.begin(), ranked.end(),
            [](const CqaAnswer& a, const CqaAnswer& b) {
              return a.frequency > b.frequency;
            });
  std::printf("\n%-28s %-12s %-10s %s\n", "claim (sku, margin)", "approx",
              "exact", "verdict");
  for (const CqaAnswer& a : ranked) {
    double exact = *ExactRelativeFrequencyByRepairs(db, q, a.tuple);
    const char* verdict = a.frequency > 0.95 ? "SAFE"
                          : a.frequency >= 0.5 ? "REVIEW"
                                               : "SUSPECT";
    std::printf("%-28s %-12.3f %-10.3f %s\n",
                TupleToString(a.tuple).c_str(), a.frequency, exact, verdict);
  }
  std::printf(
      "\nCertain answers alone would only return the SAFE rows; the "
      "relative frequency also grades every conflicted claim.\n");
  return 0;
}
