// Quickstart: the paper's Example 1.1 end to end.
//
// An inconsistent Employee table is queried under three semantics:
//  1. plain evaluation over the inconsistent database,
//  2. classic certain answers (true in *every* repair),
//  3. the refined notion — the relative frequency of each answer,
//     approximated by all four schemes.

#include <cstdio>

#include "cqa/apx_cqa.h"
#include "cqa/exact.h"
#include "query/evaluator.h"
#include "query/parser.h"

using namespace cqa;

int main() {
  // Schema: Employee(id, name, dept) with key(employee) = {id}.
  Schema schema;
  schema.AddRelation(RelationSchema("employee",
                                    {{"id", ValueType::kInt},
                                     {"name", ValueType::kString},
                                     {"dept", ValueType::kString}},
                                    {0}));

  // The inconsistent instance of Example 1.1: we are uncertain about
  // Bob's department and about who employee 2 is.
  Database db(&schema);
  db.Insert("employee", {Value(1), Value("Bob"), Value("HR")});
  db.Insert("employee", {Value(1), Value("Bob"), Value("IT")});
  db.Insert("employee", {Value(2), Value("Alice"), Value("IT")});
  db.Insert("employee", {Value(2), Value("Tim"), Value("IT")});
  std::printf("database consistent w.r.t. primary keys: %s\n",
              db.SatisfiesKeys() ? "yes" : "no");

  // "Do employees 1 and 2 work in the same department?"
  ConjunctiveQuery boolean_q = MustParseCq(
      schema, "Q() :- employee(1, N1, D), employee(2, N2, D).");

  // 1. Naive evaluation says yes — but that ignores the inconsistency.
  CqEvaluator eval(&db);
  std::printf("naive evaluation over D:  %s\n",
              eval.HasAnswer(boolean_q) ? "true" : "false");

  // 2. Certain answers say no — true in only 2 of the 4 repairs.
  std::printf("certain answer:           %s\n",
              *IsCertainAnswerByRepairs(db, boolean_q, {}) ? "true"
                                                           : "false");

  // 3. The relative frequency is 50%: far more informative. Exact first
  //    (feasible here: only 4 repairs), then each approximation scheme.
  std::printf("exact relative frequency: %.3f\n",
              *ExactRelativeFrequencyByRepairs(db, boolean_q, {}));
  ApxParams params;  // ε = 0.1, δ = 0.25 — the paper's configuration.
  for (SchemeKind kind : AllSchemeKinds()) {
    Rng rng(2021);
    CqaRunResult run = ApxCqa(db, boolean_q, kind, params, rng);
    std::printf("  %-8s ≈ %.3f  (%zu samples, %.4fs)\n",
                SchemeKindName(kind), run.answers[0].frequency,
                run.total_samples, run.scheme_seconds);
  }

  // Non-Boolean: how likely is each person to be a real employee record?
  ConjunctiveQuery names_q =
      MustParseCq(schema, "Q(N) :- employee(I, N, D).");
  Rng rng(7);
  CqaRunResult run = ApxCqa(db, names_q, SchemeKind::kKlm, params, rng);
  std::printf("\nans_{D,Σ}(Q) for Q(N) :- employee(I, N, D), via KLM:\n");
  for (const CqaAnswer& a : run.answers) {
    std::printf("  %-18s frequency ≈ %.3f\n",
                TupleToString(a.tuple).c_str(), a.frequency);
  }
  std::printf(
      "\n(Bob is certain — frequency 1.0; Alice and Tim are each in half "
      "of the repairs.)\n");
  return 0;
}
