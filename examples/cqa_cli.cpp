// cqa_cli — a command-line front end to the library, the workflow a
// downstream user runs without writing C++:
//
//   cqa_cli gen    --schema=tpch --sf=0.0005 --out=DIR
//   cqa_cli noise  --schema=tpch --data=DIR --out=DIR2 --p=0.5
//                  --query='Q(N) :- ...'
//   cqa_cli run    --schema=tpch --data=DIR2 --scheme=KLM
//                  --query='Q(N) :- ...' [--epsilon=0.1 --delta=0.25]
//   cqa_cli prep   --schema=tpch --data=DIR2 --query='...' --out=FILE
//   cqa_cli approx --syn=FILE --scheme=KL
//   cqa_cli profile --schema=tpch --data=DIR2 --query='...'
//   cqa_cli sql    --schema=tpch --query='Q(N) :- ...'
//
// Data directories hold dbgen-style .tbl files (one per relation).
// `prep`/`approx` decouple the preprocessing step from the schemes via
// the synopsis-set serialization; `profile` prints the static and dynamic
// query parameters of §6.1 plus the advisor's recommendation.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <initializer_list>
#include <map>
#include <string>

#include "cqa/advisor.h"
#include "cqa/apx_cqa.h"
#include "cqa/rewriting.h"
#include "cqa/synopsis_io.h"
#include "gen/noise.h"
#include "gen/tpcds.h"
#include "gen/tpch.h"
#include "obs/bench_json.h"
#include "obs/convergence.h"
#include "obs/metrics.h"
#ifndef CQABENCH_NO_OBS
#include "obs/profiler.h"
#endif
#include "obs/report.h"
#include "obs/trace.h"
#include "query/parser.h"
#include "storage/tbl_io.h"

using namespace cqa;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
  }

  /// Rejects flags the command does not understand. Without this check a
  /// typo like --obs_reprot= would be swallowed by the flag map and the
  /// run would silently produce no report.
  bool ValidateKeys(std::initializer_list<const char*> allowed) const {
    bool ok = true;
    for (const auto& [key, value] : flags) {
      bool known = false;
      for (const char* a : allowed) known |= key == a;
      if (!known) {
        std::fprintf(stderr, "error: unknown flag --%s for command %s\n",
                     key.c_str(), command.c_str());
        ok = false;
      }
    }
    return ok;
  }
};

int Usage() {
  std::fprintf(stderr,
               "usage: cqa_cli <gen|noise|run|sql> --schema=<tpch|tpcds>\n"
               "  gen    --sf=F --out=DIR [--seed=N]\n"
               "  noise  --data=DIR --out=DIR --query=Q [--p=F] [--min=N "
               "--max=N] [--seed=N]\n"
               "  run    --data=DIR --query=Q [--scheme=Natural|KL|KLM|Cover]"
               " [--epsilon=F --delta=F] [--timeout=S] [--seed=N]"
               " [--obs_report=FILE] [--obs_trace=FILE]"
               " [--obs_trace_chrome=FILE] [--obs_convergence=FILE]"
               " [--obs_metrics=FILE] [--bench_json=FILE]"
               " [--obs_profile=FILE] [--obs_profile_hz=N]"
               " [--obs_profile_fold=FILE]\n"
               "  prep   --data=DIR --query=Q --out=FILE\n"
               "  approx --syn=FILE [--scheme=...] [--epsilon=F --delta=F]\n"
               "  profile --data=DIR --query=Q\n"
               "  sql    --query=Q\n");
  return 2;
}

Schema MakeSchema(const std::string& name) {
  if (name == "tpcds") return MakeTpcdsSchema();
  return MakeTpchSchema();
}

bool LoadData(const std::string& dir, Database* db) {
  std::string error;
  if (!ReadTblDirectory(db, dir, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return false;
  }
  return true;
}

bool ParseQueryFlag(const Schema& schema, const Args& args,
                    ConjunctiveQuery* q) {
  std::string text = args.Get("query", "");
  if (text.empty()) {
    std::fprintf(stderr, "error: --query is required\n");
    return false;
  }
  std::string error;
  if (!ParseCq(schema, text, q, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return false;
  }
  return true;
}

int CmdGen(const Args& args) {
  if (!args.ValidateKeys({"schema", "sf", "out", "seed"})) return Usage();
  std::string out = args.Get("out", "");
  if (out.empty()) return Usage();
  std::filesystem::create_directories(out);
  double sf = args.GetDouble("sf", 0.0005);
  uint64_t seed = static_cast<uint64_t>(args.GetDouble("seed", 1));
  Dataset d;
  if (args.Get("schema", "tpch") == "tpcds") {
    d = GenerateTpcds(TpcdsOptions{sf, seed});
  } else {
    d = GenerateTpch(TpchOptions{sf, seed});
  }
  std::string error;
  if (!WriteTblDirectory(*d.db, out, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %zu facts across %zu relations to %s\n",
              d.db->NumFacts(), d.db->NumRelations(), out.c_str());
  return 0;
}

int CmdNoise(const Args& args) {
  if (!args.ValidateKeys(
          {"schema", "data", "out", "query", "p", "min", "max", "seed"})) {
    return Usage();
  }
  Schema schema = MakeSchema(args.Get("schema", "tpch"));
  Database db(&schema);
  if (!LoadData(args.Get("data", "."), &db)) return 1;
  ConjunctiveQuery q;
  if (!ParseQueryFlag(schema, args, &q)) return 1;
  std::string out = args.Get("out", "");
  if (out.empty()) return Usage();
  std::filesystem::create_directories(out);

  Rng rng(static_cast<uint64_t>(args.GetDouble("seed", 7)));
  NoiseOptions options;
  options.p = args.GetDouble("p", 0.5);
  options.min_block_size = static_cast<size_t>(args.GetDouble("min", 2));
  options.max_block_size = static_cast<size_t>(args.GetDouble("max", 5));
  NoiseStats stats = AddQueryAwareNoise(&db, q, options, rng);
  std::string error;
  if (!WriteTblDirectory(db, out, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf(
      "noise: %zu relevant facts, %zu selected, %zu added; wrote %s\n",
      stats.relevant_facts, stats.selected_facts, stats.facts_added,
      out.c_str());
  return 0;
}

/// Writes `content` to `path`, reporting failures on stderr.
bool WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    return false;
  }
  bool ok = std::fwrite(content.data(), 1, content.size(), f) ==
            content.size();
  ok &= std::fclose(f) == 0;
  if (!ok) std::fprintf(stderr, "error: short write to %s\n", path.c_str());
  return ok;
}

int CmdRun(const Args& args) {
  if (!args.ValidateKeys({"schema", "data", "query", "scheme", "epsilon",
                          "delta", "timeout", "seed", "obs_report",
                          "obs_trace", "obs_trace_chrome", "obs_convergence",
                          "obs_metrics", "bench_json", "obs_profile",
                          "obs_profile_hz", "obs_profile_fold"})) {
    return Usage();
  }
  const std::string profile_path = args.Get("obs_profile", "");
  const std::string profile_fold_path = args.Get("obs_profile_fold", "");
  const bool profiling = !profile_path.empty() || !profile_fold_path.empty();
#ifdef CQABENCH_NO_OBS
  if (profiling || args.flags.count("obs_profile_hz") != 0) {
    std::fprintf(stderr,
                 "error: --obs_profile* requires an observability build; "
                 "this binary was compiled with CQABENCH_NO_OBS\n");
    return 1;
  }
#else
  if (profiling) {
    obs::ProfilerOptions popts;
    const double hz = args.GetDouble("obs_profile_hz", popts.hz);
    if (hz < 1 || hz > 1000) {
      std::fprintf(stderr, "error: --obs_profile_hz must be in [1, 1000]\n");
      return 1;
    }
    popts.hz = static_cast<int>(hz);
    std::string error;
    if (!obs::Profiler::Instance().Start(popts, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
  }
#endif  // CQABENCH_NO_OBS
  Schema schema = MakeSchema(args.Get("schema", "tpch"));
  Database db(&schema);
  if (!LoadData(args.Get("data", "."), &db)) return 1;
  ConjunctiveQuery q;
  if (!ParseQueryFlag(schema, args, &q)) return 1;

  std::optional<SchemeKind> scheme = ParseSchemeKind(args.Get("scheme", "KLM"));
  if (!scheme.has_value()) {
    std::fprintf(stderr, "error: unknown scheme (Natural|KL|KLM|Cover)\n");
    return 1;
  }
  ApxParams params;
  params.epsilon = args.GetDouble("epsilon", 0.1);
  params.delta = args.GetDouble("delta", 0.25);
  double timeout = args.GetDouble("timeout", -1.0);

  obs::RunReporter reporter;
  std::string report_path = args.Get("obs_report", "");
  if (!report_path.empty()) {
    std::string error;
    if (!reporter.Open(report_path, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
  }
  obs::ConvergenceReporter convergence;
  std::string convergence_path = args.Get("obs_convergence", "");
  if (!convergence_path.empty()) {
    std::string error;
    if (!convergence.Open(convergence_path, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
  }
  std::string bench_json_path = args.Get("bench_json", "");
  params.record_convergence =
      convergence.is_open() || !bench_json_path.empty();

  Rng rng(static_cast<uint64_t>(args.GetDouble("seed", 7)));
  CqaRunResult run =
      ApxCqa(db, q, *scheme, params, rng,
             timeout > 0 ? Deadline(timeout) : Deadline::Infinite());
  std::printf("# preprocessing %.4fs, scheme %.4fs, %zu samples%s\n",
              run.preprocess_seconds, run.scheme_seconds, run.total_samples,
              run.timed_out ? " (TIMED OUT, partial)" : "");
  for (const CqaAnswer& a : run.answers) {
    std::printf("%s\t%.6f\n", TupleToString(a.tuple).c_str(), a.frequency);
  }

  obs::RunContext context{"cli:run", "timeout", timeout};
  if (reporter.is_open() || !bench_json_path.empty()) {
    obs::RunRecord record =
        MakeRunRecord(run, *scheme, context,
                      run.preprocess_seconds + run.scheme_seconds);
    if (reporter.is_open()) reporter.Add(record);
    if (!bench_json_path.empty()) {
      obs::BenchJsonWriter writer;
      obs::BenchMetadata meta;
      meta.name = "cqa_cli";
      meta.seed = static_cast<uint64_t>(args.GetDouble("seed", 7));
      meta.timeout_seconds = timeout;
      meta.epsilon = params.epsilon;
      meta.delta = params.delta;
      writer.SetMetadata(meta);
      writer.AddRun(record);
      std::string error;
      if (!writer.WriteFile(bench_json_path, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
      }
    }
  }
  if (convergence.is_open()) {
    for (const obs::ConvergenceSeries& series : run.convergence) {
      convergence.Add(context.scenario, context.x_label, context.x,
                      SchemeKindName(*scheme), series);
    }
    convergence.Close();
  }
  std::string metrics_path = args.Get("obs_metrics", "");
  if (!metrics_path.empty()) {
    if (!WriteTextFile(metrics_path, obs::Registry::Instance().ToJson())) {
      return 1;
    }
  }
  std::string trace_path = args.Get("obs_trace", "");
  if (!trace_path.empty()) {
    std::string error;
    if (!obs::TraceBuffer::Instance().ExportJsonl(trace_path, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
  }
  std::string chrome_path = args.Get("obs_trace_chrome", "");
  if (!chrome_path.empty()) {
    std::string error;
    if (!obs::TraceBuffer::Instance().ExportChromeTrace(chrome_path, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
  }
#ifndef CQABENCH_NO_OBS
  if (profiling) {
    obs::Profiler& profiler = obs::Profiler::Instance();
    profiler.Stop();
    if (!profile_path.empty() &&
        !WriteTextFile(profile_path, profiler.PprofGzipped())) {
      return 1;
    }
    if (!profile_fold_path.empty() &&
        !WriteTextFile(profile_fold_path, profiler.FoldedText())) {
      return 1;
    }
    const obs::ProfilerStats stats = profiler.stats();
    std::printf("# cpu profile: %llu samples, %llu stacks\n",
                static_cast<unsigned long long>(stats.samples),
                static_cast<unsigned long long>(stats.distinct_stacks));
  }
#endif  // CQABENCH_NO_OBS
  return 0;
}

int CmdPrep(const Args& args) {
  if (!args.ValidateKeys({"schema", "data", "query", "out"})) return Usage();
  Schema schema = MakeSchema(args.Get("schema", "tpch"));
  Database db(&schema);
  if (!LoadData(args.Get("data", "."), &db)) return 1;
  ConjunctiveQuery q;
  if (!ParseQueryFlag(schema, args, &q)) return 1;
  std::string out = args.Get("out", "");
  if (out.empty()) return Usage();
  PreprocessResult pre = BuildSynopses(db, q);
  std::string error;
  if (!WriteSynopses(pre, out, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf(
      "preprocessed in %.4fs: %zu answers, %zu images, balance %.3f -> %s\n",
      pre.stats().seconds, pre.NumAnswers(),
      pre.stats().num_distinct_images, pre.Balance(), out.c_str());
  return 0;
}

int CmdApprox(const Args& args) {
  if (!args.ValidateKeys({"syn", "scheme", "epsilon", "delta", "seed"})) {
    return Usage();
  }
  std::string path = args.Get("syn", "");
  if (path.empty()) return Usage();
  std::vector<AnswerSynopsis> synopses;
  std::string error;
  if (!ReadSynopses(path, &synopses, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::optional<SchemeKind> scheme =
      ParseSchemeKind(args.Get("scheme", "KLM"));
  if (!scheme.has_value()) {
    std::fprintf(stderr, "error: unknown scheme (Natural|KL|KLM|Cover)\n");
    return 1;
  }
  ApxParams params;
  params.epsilon = args.GetDouble("epsilon", 0.1);
  params.delta = args.GetDouble("delta", 0.25);
  Rng rng(static_cast<uint64_t>(args.GetDouble("seed", 7)));
  auto apx = ApxRelativeFreqScheme::Create(*scheme);
  for (const AnswerSynopsis& as : synopses) {
    ApxResult r = apx->Run(as.synopsis, params, rng);
    std::printf("%s\t%.6f\n", TupleToString(as.answer).c_str(), r.estimate);
  }
  return 0;
}

int CmdProfile(const Args& args) {
  if (!args.ValidateKeys({"schema", "data", "query"})) return Usage();
  Schema schema = MakeSchema(args.Get("schema", "tpch"));
  Database db(&schema);
  if (!LoadData(args.Get("data", "."), &db)) return 1;
  ConjunctiveQuery q;
  if (!ParseQueryFlag(schema, args, &q)) return 1;
  PreprocessResult pre = BuildSynopses(db, q);
  size_t conflicting = 0, blocks = 0;
  for (const AnswerSynopsis& as : pre.answers()) {
    blocks += as.synopsis.NumBlocks();
    for (const Synopsis::Block& b : as.synopsis.blocks()) {
      if (b.size > 1) ++conflicting;
    }
  }
  std::printf("static parameters\n");
  std::printf("  atoms:              %zu\n", q.NumAtoms());
  std::printf("  joins:              %zu\n", q.NumJoins());
  std::printf("  constants:          %zu\n", q.NumConstantOccurrences());
  std::printf("  boolean:            %s\n", q.IsBoolean() ? "yes" : "no");
  std::printf("dynamic parameters (w.r.t. the loaded database)\n");
  std::printf("  output size |Q(D)|: %zu\n", pre.NumAnswers());
  std::printf("  homomorphic size:   %zu\n",
              pre.stats().num_distinct_images);
  std::printf("  balance:            %.4f\n", pre.Balance());
  std::printf("  synopsis blocks:    %zu (%zu conflicting)\n", blocks,
              conflicting);
  std::printf("  preprocessing:      %.4fs\n", pre.stats().seconds);
  std::printf("recommended scheme:   %s\n",
              SchemeKindName(RecommendScheme(pre)));
  std::printf("  rationale:          %s\n", RecommendationRationale(pre));
  return 0;
}

int CmdSql(const Args& args) {
  if (!args.ValidateKeys({"schema", "query"})) return Usage();
  Schema schema = MakeSchema(args.Get("schema", "tpch"));
  ConjunctiveQuery q;
  if (!ParseQueryFlag(schema, args, &q)) return 1;
  for (size_t rid = 0; rid < schema.NumRelations(); ++rid) {
    bool used = false;
    for (const Atom& a : q.atoms()) used |= a.relation_id == rid;
    if (used) {
      std::printf("%s\n\n", RelationViewSql(schema.relation(rid), rid).c_str());
    }
  }
  std::printf("%s\n", RewritingSql(schema, q).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) return Usage();
    const char* eq = std::strchr(arg, '=');
    if (eq == nullptr) return Usage();
    args.flags[std::string(arg + 2, eq)] = std::string(eq + 1);
  }
  if (args.command == "gen") return CmdGen(args);
  if (args.command == "noise") return CmdNoise(args);
  if (args.command == "run") return CmdRun(args);
  if (args.command == "prep") return CmdPrep(args);
  if (args.command == "approx") return CmdApprox(args);
  if (args.command == "profile") return CmdProfile(args);
  if (args.command == "sql") return CmdSql(args);
  return Usage();
}
