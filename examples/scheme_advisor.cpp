// Scheme advisor: operationalizes the paper's take-home messages (§7.2).
//
// The preprocessing step already reveals the characteristic that decides
// the indicated scheme:
//   * Boolean queries / balance ≈ 0  ->  Natural
//   * non-Boolean queries            ->  KLM
// The advisor predicts the winner from the synopsis set, then races all
// four schemes to verify the advice on two contrasting workloads.

#include <cstdio>

#include "bench/harness.h"
#include "cqa/apx_cqa.h"
#include "gen/noise.h"
#include "gen/tpch.h"
#include "query/parser.h"

using namespace cqa;

namespace {

/// The decision rule distilled from the paper's experiments: queries
/// whose answers behave like Boolean ones (balance near zero) are the
/// Natural regime; anything else is KLM's.
SchemeKind Advise(const PreprocessResult& pre) {
  if (pre.Balance() < 0.05) return SchemeKind::kNatural;
  return SchemeKind::kKlm;
}

void Race(const Database& base, const char* label,
          const ConjunctiveQuery& q, double noise_p, Rng& rng) {
  Database noisy = base.Clone();
  NoiseOptions noise;
  noise.p = noise_p;
  AddQueryAwareNoise(&noisy, q, noise, rng);

  PreprocessResult pre = BuildSynopses(noisy, q);
  SchemeKind advice = Advise(pre);
  std::printf("%s (noise %.0f%%)\n  balance=%.3f boolean=%s -> advised: %s\n",
              label, 100.0 * noise_p, pre.Balance(),
              q.IsBoolean() ? "yes" : "no", SchemeKindName(advice));

  SchemeKind fastest = SchemeKind::kNatural;
  double best = -1.0;
  for (const SchemeTiming& t :
       RunAllSchemes(pre, ApxParams{}, /*timeout_seconds=*/5.0, rng)) {
    std::printf("    %-8s %8.4fs%s\n", SchemeKindName(t.scheme), t.seconds,
                t.timed_out ? " (timeout)" : "");
    if (best < 0 || t.seconds < best) {
      best = t.seconds;
      fastest = t.scheme;
    }
  }
  std::printf("  measured fastest: %s — advice %s\n\n",
              SchemeKindName(fastest),
              fastest == advice ? "CONFIRMED" : "differs on this instance");
}

}  // namespace

int main() {
  TpchOptions options;
  options.scale_factor = 0.0005;
  Dataset d = GenerateTpch(options);
  Rng rng(123);

  // Workload A: a Boolean join query — the Natural regime.
  ConjunctiveQuery boolean_q = MustParseCq(
      *d.schema,
      "Q() :- orders(OK, CK, OS, TP, OD, '1-URGENT', CL, SP, OC),"
      " lineitem(OK, PK, SK, LN, QT, EP, DI, TX, 'R', LS, SD, CD, RD, SI,"
      " SM, CM).");
  Race(*d.db, "Boolean TPC-H query", boolean_q, 0.6, rng);

  // Workload B: a non-Boolean projection-heavy query — the KLM regime.
  ConjunctiveQuery wide_q = MustParseCq(
      *d.schema,
      "Q(OK, CK, OD) :- orders(OK, CK, OS, TP, OD, OP, CL, SP, OC),"
      " customer(CK, CN, CA, NK, CP, CB, 'BUILDING', CC).");
  Race(*d.db, "non-Boolean TPC-H query", wide_q, 0.6, rng);
  return 0;
}
